"""Sharded on-disk dataset store for out-of-core training.

The paper's scaling studies cover ~2.65 M structures; holding them (plus
neighbor lists) in memory is not an option on one node.  This module
stores a dataset as fixed-size *shards* of flat binary arrays plus a
compact per-structure **size index**, so the two halves of training can
touch exactly the bytes they need:

* **Epoch planning** (the Algorithm 1 binpack/LPT balancer) reads only
  the size index — ``n_atoms``, ``n_edges``, ``system_id``, ``energy``,
  ``shard_id`` per structure — a few dozen bytes per structure,
  independent of payload size.  ``load_size_index`` opens it without
  touching (or even requiring) the shard payload files.
* **Step execution** memory-maps shards on demand and materializes
  structures as zero-copy views into the mapped pages, with an LRU
  resident budget (``resident_shards``) bounding how many shards are
  mapped at once.

Shard layout: every field is a flat array at a 64-byte-aligned offset in
one ``shard_NNNNN.bin`` file; per-structure slices come from the
``atom_offsets`` / ``edge_offsets`` prefix-sum tables.  The ``index.json``
metadata and the ``sizes.npz`` size index are written atomically
(temp file + ``os.replace``), and each shard carries two checksums: a
cheap one over labels + offset tables verified on every first map (stale
index detection) and a full-payload one verified by :meth:`ShardedDataset.verify`.

Incremental (Welford) statistics are accumulated while packing, so the
per-atom energy mean/std of an arbitrarily large dataset is available
from the index alone; :func:`repro.data.statistics.per_atom_energy_statistics`
recomputes the same numbers directly as a cross-check.
"""

from __future__ import annotations

import hashlib
import json
import math
import os
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence

import numpy as np

from ..graphs.molecular_graph import MolecularGraph
from ..graphs.neighborlist import DEFAULT_CUTOFF, build_neighbor_list
from .composite import DatasetSpec, build_training_set
from .labels import ReferencePotential, attach_labels

__all__ = [
    "DatasetStatistics",
    "ShardWriter",
    "ShardedDataset",
    "ShardedDatasetError",
    "ShardTruncatedError",
    "SizeIndex",
    "StaleIndexError",
    "load_size_index",
    "pack_graphs",
    "pack_training_set",
]

_FORMAT = "repro-sharded-dataset"
_VERSION = 1
_ALIGN = 64  # field alignment inside a shard, matches the shm slab
_INDEX_FILE = "index.json"
_SIZES_FILE = "sizes.npz"


class ShardedDatasetError(RuntimeError):
    """Base error for store problems (missing/corrupt dataset directories)."""


class ShardTruncatedError(ShardedDatasetError):
    """A shard payload file is missing bytes the index says it has."""


class StaleIndexError(ShardedDatasetError):
    """The index does not describe the shard bytes on disk."""


def _align(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


def _digest(chunks: Iterable[bytes]) -> str:
    h = hashlib.blake2b(digest_size=16)
    for c in chunks:
        h.update(c)
    return h.hexdigest()


def _quick_digest(energy, atom_offsets, edge_offsets) -> str:
    """Cheap per-shard integrity digest: labels + both offset tables.

    Verified on every first map of a shard — catches an index paired
    with rewritten/relabeled payloads without reading the large
    position/edge fields.
    """
    return _digest(
        np.ascontiguousarray(a).tobytes()
        for a in (energy, atom_offsets, edge_offsets)
    )


# -- statistics ----------------------------------------------------------------


@dataclass
class DatasetStatistics:
    """Incrementally maintained dataset statistics (Welford update).

    ``energy_mean_per_atom`` / ``energy_std_per_atom`` are over labeled
    structures' per-atom energies — the quantities
    :class:`repro.training.EnergyScaler` standardizes with — accumulated
    one structure at a time so packing never needs a second pass.
    """

    n_structures: int = 0
    n_labeled: int = 0
    total_atoms: int = 0
    total_edges: int = 0
    energy_mean_per_atom: float = 0.0
    energy_m2_per_atom: float = 0.0

    @property
    def energy_std_per_atom(self) -> float:
        """Population std (ddof=0), matching ``np.std`` in EnergyScaler.fit."""
        if self.n_labeled == 0:
            return 0.0
        return math.sqrt(self.energy_m2_per_atom / self.n_labeled)

    def update(self, n_atoms: int, n_edges: int, energy: Optional[float]) -> None:
        self.n_structures += 1
        self.total_atoms += int(n_atoms)
        self.total_edges += int(n_edges)
        if energy is None or not math.isfinite(energy):
            return
        self.n_labeled += 1
        x = energy / n_atoms
        delta = x - self.energy_mean_per_atom
        self.energy_mean_per_atom += delta / self.n_labeled
        self.energy_m2_per_atom += delta * (x - self.energy_mean_per_atom)

    def to_dict(self) -> Dict[str, float]:
        return {
            "n_structures": self.n_structures,
            "n_labeled": self.n_labeled,
            "total_atoms": self.total_atoms,
            "total_edges": self.total_edges,
            "energy_mean_per_atom": self.energy_mean_per_atom,
            "energy_m2_per_atom": self.energy_m2_per_atom,
        }

    @classmethod
    def from_dict(cls, d: Dict[str, float]) -> "DatasetStatistics":
        return cls(
            n_structures=int(d["n_structures"]),
            n_labeled=int(d["n_labeled"]),
            total_atoms=int(d["total_atoms"]),
            total_edges=int(d["total_edges"]),
            energy_mean_per_atom=float(d["energy_mean_per_atom"]),
            energy_m2_per_atom=float(d["energy_m2_per_atom"]),
        )


# -- size index ----------------------------------------------------------------


@dataclass
class SizeIndex:
    """Per-structure size/label metadata, loadable without any payload.

    ``energy`` is part of the index deliberately: it lets
    :meth:`repro.training.EnergyScaler` fit — and planning-time label
    validation run — from the index alone, keeping the streamed trainer's
    setup payload-free *and* byte-identical to the in-memory one.
    Unlabeled structures carry ``NaN``.
    """

    n_atoms: np.ndarray
    n_edges: np.ndarray
    system_id: np.ndarray
    energy: np.ndarray
    shard_id: np.ndarray
    local_id: np.ndarray
    system_names: List[str] = field(default_factory=list)

    @property
    def n_samples(self) -> int:
        return int(self.n_atoms.size)

    @property
    def total_tokens(self) -> int:
        return int(self.n_atoms.sum())

    @property
    def total_edges(self) -> int:
        return int(self.n_edges.sum())

    def spec(self) -> DatasetSpec:
        """Bridge into the simulation stack's size-level dataset view."""
        return DatasetSpec(
            self.n_atoms.copy(),
            self.n_edges.copy(),
            self.system_id.copy(),
            list(self.system_names),
        )

    def system_counts(self) -> Dict[str, int]:
        counts = np.bincount(self.system_id, minlength=len(self.system_names))
        return {name: int(c) for name, c in zip(self.system_names, counts)}


def _read_meta(path: Path) -> dict:
    index_path = path / _INDEX_FILE
    if not index_path.is_file():
        raise ShardedDatasetError(
            f"{path} is not a sharded dataset (no {_INDEX_FILE})"
        )
    with open(index_path, "r", encoding="utf-8") as f:
        meta = json.load(f)
    if meta.get("format") != _FORMAT:
        raise ShardedDatasetError(
            f"{index_path}: unknown format {meta.get('format')!r}"
        )
    if int(meta.get("version", -1)) > _VERSION:
        raise ShardedDatasetError(
            f"{index_path}: version {meta['version']} is newer than "
            f"supported version {_VERSION}"
        )
    return meta


def load_size_index(path, meta: Optional[dict] = None) -> SizeIndex:
    """Load only the size index of a packed dataset.

    Reads ``index.json`` + ``sizes.npz``; the shard payload files are
    neither opened nor required to exist — this is the planning-side
    entry point (epoch planning cost must scale with the index, not
    payload bytes).
    """
    path = Path(path)
    if meta is None:
        meta = _read_meta(path)
    sizes_path = path / _SIZES_FILE
    if not sizes_path.is_file():
        raise ShardedDatasetError(f"{path}: missing {_SIZES_FILE}")
    with np.load(sizes_path) as z:
        return SizeIndex(
            n_atoms=z["n_atoms"],
            n_edges=z["n_edges"],
            system_id=z["system_id"],
            energy=z["energy"],
            shard_id=z["shard_id"],
            local_id=z["local_id"],
            system_names=list(meta["system_names"]),
        )


# -- writer --------------------------------------------------------------------


class ShardWriter:
    """Pack structures into fixed-size shards of flat, offset-indexed arrays.

    Structures are buffered and flushed ``shard_size`` at a time, so
    memory stays bounded by one shard regardless of dataset size.  Use as
    a context manager (or call :meth:`close`) — the index files are only
    written on a clean close, so a crash mid-pack leaves an openable
    previous index (if any) rather than a half-written one.
    """

    def __init__(
        self,
        path,
        shard_size: int = 256,
        cutoff: Optional[float] = None,
    ) -> None:
        if shard_size <= 0:
            raise ValueError("shard_size must be positive")
        self.path = Path(path)
        self.path.mkdir(parents=True, exist_ok=True)
        self.shard_size = int(shard_size)
        self.cutoff = cutoff
        self.statistics = DatasetStatistics()
        self._buffer: List[MolecularGraph] = []
        self._shards: List[dict] = []
        self._system_ids: Dict[str, int] = {}
        self._rows: Dict[str, List] = {
            k: [] for k in ("n_atoms", "n_edges", "system_id", "energy",
                            "shard_id", "local_id")
        }
        self._edges_built = True
        self._labeled = True
        self._closed = False

    def __enter__(self) -> "ShardWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.close()

    @property
    def n_structures(self) -> int:
        return len(self._rows["n_atoms"])

    def add(self, graph: MolecularGraph) -> None:
        """Append one structure (buffered; flushed per ``shard_size``)."""
        if self._closed:
            raise ShardedDatasetError("writer is closed")
        sys_id = self._system_ids.setdefault(graph.system, len(self._system_ids))
        energy = graph.energy
        labeled = energy is not None and math.isfinite(energy)
        self._edges_built &= graph.has_edges
        self._labeled &= labeled
        self._rows["n_atoms"].append(graph.n_atoms)
        self._rows["n_edges"].append(graph.n_edges)
        self._rows["system_id"].append(sys_id)
        self._rows["energy"].append(float(energy) if labeled else math.nan)
        self._rows["shard_id"].append(len(self._shards))
        self._rows["local_id"].append(len(self._buffer))
        self.statistics.update(graph.n_atoms, graph.n_edges, energy)
        self._buffer.append(graph)
        if len(self._buffer) >= self.shard_size:
            self._flush()

    def add_all(self, graphs: Iterable[MolecularGraph]) -> None:
        for g in graphs:
            self.add(g)

    def _flush(self) -> None:
        graphs = self._buffer
        if not graphs:
            return
        sid = len(self._shards)
        n = len(graphs)
        n_atoms = np.array([g.n_atoms for g in graphs], dtype=np.int64)
        n_edges = np.array([g.n_edges for g in graphs], dtype=np.int64)
        atom_offsets = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(n_atoms, out=atom_offsets[1:])
        edge_offsets = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(n_edges, out=edge_offsets[1:])
        empty_edges = np.zeros((2, 0), dtype=np.int64)
        fields: "OrderedDict[str, np.ndarray]" = OrderedDict()
        fields["atom_offsets"] = atom_offsets
        fields["edge_offsets"] = edge_offsets
        fields["positions"] = np.concatenate([g.positions for g in graphs])
        fields["species"] = np.concatenate([g.species for g in graphs])
        fields["edge_index"] = np.concatenate(
            [
                g.edge_index if g.edge_index is not None else empty_edges
                for g in graphs
            ],
            axis=1,
        )
        fields["edge_shift"] = np.concatenate(
            [
                g.edge_shift
                if g.edge_shift is not None
                else np.zeros((g.n_edges, 3))
                for g in graphs
            ]
        )
        fields["cells"] = np.stack(
            [g.cell if g.cell is not None else np.zeros((3, 3)) for g in graphs]
        )
        fields["has_cell"] = np.array([g.cell is not None for g in graphs])
        fields["pbc"] = np.array([g.pbc for g in graphs])
        fields["has_edges"] = np.array([g.has_edges for g in graphs])
        fields["energy"] = np.array(
            self._rows["energy"][-n:], dtype=np.float64
        )
        if any(g.forces is not None for g in graphs):
            fields["has_forces"] = np.array(
                [g.forces is not None for g in graphs]
            )
            fields["forces"] = np.concatenate(
                [
                    g.forces
                    if g.forces is not None
                    else np.full((g.n_atoms, 3), np.nan)
                    for g in graphs
                ]
            )
        layout: Dict[str, dict] = {}
        offset = 0
        for name, arr in fields.items():
            arr = np.ascontiguousarray(arr)
            fields[name] = arr
            offset = _align(offset)
            layout[name] = {
                "offset": offset,
                "nbytes": int(arr.nbytes),
                "dtype": arr.dtype.str,
                "shape": list(arr.shape),
            }
            offset += arr.nbytes
        payload = bytearray(offset)
        for name, arr in fields.items():
            o = layout[name]["offset"]
            payload[o : o + arr.nbytes] = arr.tobytes()
        filename = f"shard_{sid:05d}.bin"
        tmp = self.path / (filename + ".tmp")
        with open(tmp, "wb") as f:
            f.write(payload)
        os.replace(tmp, self.path / filename)
        self._shards.append(
            {
                "file": filename,
                "nbytes": len(payload),
                "n_structures": n,
                "fields": layout,
                "checksum": _digest([bytes(payload)]),
                "quick_checksum": _quick_digest(
                    fields["energy"], atom_offsets, edge_offsets
                ),
            }
        )
        self._buffer = []

    def close(self) -> Path:
        """Flush the tail shard and atomically publish the index files."""
        if self._closed:
            return self.path
        self._flush()
        rows = self._rows
        sizes = {
            "n_atoms": np.asarray(rows["n_atoms"], dtype=np.int64),
            "n_edges": np.asarray(rows["n_edges"], dtype=np.int64),
            "system_id": np.asarray(rows["system_id"], dtype=np.int64),
            "energy": np.asarray(rows["energy"], dtype=np.float64),
            "shard_id": np.asarray(rows["shard_id"], dtype=np.int64),
            "local_id": np.asarray(rows["local_id"], dtype=np.int64),
        }
        tmp = self.path / (_SIZES_FILE + ".tmp")
        with open(tmp, "wb") as f:
            np.savez(f, **sizes)
        os.replace(tmp, self.path / _SIZES_FILE)
        system_names = [
            name
            for name, _ in sorted(self._system_ids.items(), key=lambda kv: kv[1])
        ]
        meta = {
            "format": _FORMAT,
            "version": _VERSION,
            "cutoff": self.cutoff,
            "shard_size": self.shard_size,
            "n_structures": self.n_structures,
            "system_names": system_names,
            "edges_built": bool(self._edges_built and self.n_structures > 0),
            "labeled": bool(self._labeled and self.n_structures > 0),
            "statistics": self.statistics.to_dict(),
            "shards": self._shards,
        }
        tmp = self.path / (_INDEX_FILE + ".tmp")
        with open(tmp, "w", encoding="utf-8") as f:
            json.dump(meta, f, indent=1)
        os.replace(tmp, self.path / _INDEX_FILE)
        self._closed = True
        return self.path


# -- reader --------------------------------------------------------------------


def _reopen(path: str, resident_shards: int) -> "ShardedDataset":
    """Pickle constructor: workers reopen the dataset from its path."""
    return ShardedDataset(path, resident_shards=resident_shards)


class ShardedDataset:
    """Memory-mapped reader over a packed dataset directory.

    Implements the sequence protocol over :class:`MolecularGraph`, so it
    drops in wherever a graph list is accepted (``Trainer``,
    ``CollateCache.get``, ``materialize_epoch``).  Structures are
    zero-copy views into at most ``resident_shards`` memory-mapped shard
    files (LRU; evicting a shard drops the map reference — the pages are
    released once no outstanding view uses them, so escaped views stay
    valid).

    Integrity: shard file sizes are checked against the index at open
    (:class:`ShardTruncatedError`), and each shard's label/offset digest
    is checked on first map (:class:`StaleIndexError`); :meth:`verify`
    additionally checks the full payload checksums and cross-checks the
    pack-time Welford statistics against a direct recomputation.

    Counters: ``payload_reads`` counts structure materializations and
    ``maps_opened`` counts shard maps — both stay at 0 under pure epoch
    planning, which is exactly what ``bench_data.py`` gates.
    """

    def __init__(self, path, resident_shards: int = 4) -> None:
        self.path = Path(path)
        meta = _read_meta(self.path)
        self._meta = meta
        self.size_index = load_size_index(self.path, meta)
        self.statistics = DatasetStatistics.from_dict(meta["statistics"])
        self.system_names = list(meta["system_names"])
        self.edges_built = bool(meta["edges_built"])
        self.labeled = bool(meta["labeled"])
        self.cutoff = meta.get("cutoff")
        self.resident_shards = max(1, int(resident_shards))
        self._shards = meta["shards"]
        if self.size_index.n_samples != int(meta["n_structures"]):
            raise StaleIndexError(
                f"{self.path}: size index has {self.size_index.n_samples} "
                f"structures, index.json says {meta['n_structures']}"
            )
        for rec in self._shards:
            p = self.path / rec["file"]
            if not p.is_file():
                raise ShardTruncatedError(f"{self.path}: missing shard {rec['file']}")
            actual = os.path.getsize(p)
            if actual != rec["nbytes"]:
                raise ShardTruncatedError(
                    f"{p}: expected {rec['nbytes']} bytes, found {actual} "
                    "(shard truncated or rewritten after packing)"
                )
        self._maps: "OrderedDict[int, Dict[str, np.ndarray]]" = OrderedDict()
        self._verified: set = set()
        self.payload_reads = 0
        self.maps_opened = 0

    # -- sequence protocol -----------------------------------------------------

    def __len__(self) -> int:
        return self.size_index.n_samples

    def __getitem__(self, i: int) -> MolecularGraph:
        return self.load(i)

    def __iter__(self) -> Iterator[MolecularGraph]:
        for i in range(len(self)):
            yield self.load(i)

    def __reduce__(self):
        return (_reopen, (str(self.path), self.resident_shards))

    # -- mapping ---------------------------------------------------------------

    @property
    def n_shards(self) -> int:
        return len(self._shards)

    @property
    def open_maps(self) -> int:
        """Number of currently resident shard maps (≤ ``resident_shards``)."""
        return len(self._maps)

    @property
    def nbytes(self) -> int:
        """Total payload bytes across all shards."""
        return int(sum(rec["nbytes"] for rec in self._shards))

    def _fields(self, sid: int) -> Dict[str, np.ndarray]:
        views = self._maps.get(sid)
        if views is not None:
            self._maps.move_to_end(sid)
            return views
        rec = self._shards[sid]
        mm = np.memmap(self.path / rec["file"], dtype=np.uint8, mode="r")
        self.maps_opened += 1
        if mm.size != rec["nbytes"]:
            raise ShardTruncatedError(
                f"{rec['file']}: mapped {mm.size} bytes, index says {rec['nbytes']}"
            )
        views = {}
        for name, spec in rec["fields"].items():
            o, nb = spec["offset"], spec["nbytes"]
            views[name] = (
                mm[o : o + nb].view(np.dtype(spec["dtype"])).reshape(spec["shape"])
            )
        if sid not in self._verified:
            quick = _quick_digest(
                views["energy"], views["atom_offsets"], views["edge_offsets"]
            )
            if quick != rec["quick_checksum"]:
                raise StaleIndexError(
                    f"{rec['file']}: shard content does not match the index "
                    "(payload rewritten after packing? re-pack or rebuild "
                    "the index)"
                )
            self._verified.add(sid)
        self._maps[sid] = views
        while len(self._maps) > self.resident_shards:
            self._maps.popitem(last=False)
        return views

    def load(self, i: int) -> MolecularGraph:
        """Materialize structure ``i`` as views into its mapped shard."""
        idx = self.size_index
        i = int(i)
        if i < 0:
            i += len(self)
        if not 0 <= i < len(self):
            raise IndexError(f"structure {i} out of range")
        f = self._fields(int(idx.shard_id[i]))
        self.payload_reads += 1
        lid = int(idx.local_id[i])
        a0, a1 = (int(v) for v in f["atom_offsets"][lid : lid + 2])
        e0, e1 = (int(v) for v in f["edge_offsets"][lid : lid + 2])
        energy = float(f["energy"][lid])
        forces = None
        if "forces" in f and bool(f["has_forces"][lid]):
            forces = f["forces"][a0:a1]
        has_edges = bool(f["has_edges"][lid])
        return MolecularGraph(
            positions=f["positions"][a0:a1],
            species=f["species"][a0:a1],
            cell=f["cells"][lid] if bool(f["has_cell"][lid]) else None,
            pbc=bool(f["pbc"][lid]),
            energy=None if math.isnan(energy) else energy,
            forces=forces,
            edge_index=f["edge_index"][:, e0:e1] if has_edges else None,
            edge_shift=f["edge_shift"][e0:e1] if has_edges else None,
            system=self.system_names[int(idx.system_id[i])],
        )

    def close(self) -> None:
        """Drop all shard maps (outstanding graph views keep pages alive)."""
        self._maps.clear()

    # -- integrity / statistics ------------------------------------------------

    def verify(self) -> Dict[str, float]:
        """Deep check: full payload checksums + statistics cross-check.

        Reads every shard once.  The pack-time Welford statistics are
        compared against :func:`repro.data.statistics.per_atom_energy_statistics`
        computed directly from the size index, and the index's per-shard
        structure counts against the offset tables.  Raises
        :class:`StaleIndexError` on any mismatch; returns a summary dict.
        """
        from .statistics import per_atom_energy_statistics

        idx = self.size_index
        for sid, rec in enumerate(self._shards):
            with open(self.path / rec["file"], "rb") as fh:
                full = _digest(iter(lambda: fh.read(1 << 20), b""))
            if full != rec["checksum"]:
                raise StaleIndexError(f"{rec['file']}: payload checksum mismatch")
            f = self._fields(sid)
            in_shard = idx.shard_id == sid
            atoms = np.diff(f["atom_offsets"])
            edges = np.diff(f["edge_offsets"])
            if not (
                np.array_equal(atoms, idx.n_atoms[in_shard])
                and np.array_equal(edges, idx.n_edges[in_shard])
                and np.array_equal(f["energy"], idx.energy[in_shard], equal_nan=True)
            ):
                raise StaleIndexError(
                    f"{rec['file']}: size index disagrees with shard offsets"
                )
        mean, std, n_labeled = per_atom_energy_statistics(idx.energy, idx.n_atoms)
        stats = self.statistics
        if n_labeled != stats.n_labeled or (
            n_labeled
            and not (
                math.isclose(mean, stats.energy_mean_per_atom, rel_tol=1e-9, abs_tol=1e-12)
                and math.isclose(std, stats.energy_std_per_atom, rel_tol=1e-9, abs_tol=1e-12)
            )
        ):
            raise StaleIndexError(
                "pack-time Welford statistics disagree with direct recomputation"
            )
        if stats.total_atoms != idx.total_tokens or stats.total_edges != idx.total_edges:
            raise StaleIndexError("pack-time totals disagree with the size index")
        return {
            "shards": self.n_shards,
            "structures": len(self),
            "energy_mean_per_atom": mean,
            "energy_std_per_atom": std,
        }

    # -- planning --------------------------------------------------------------

    def sampler(
        self,
        capacity: int,
        num_replicas: int = 1,
        shuffle: bool = True,
        seed: int = 0,
        size_metric=None,
    ):
        """A shard-aware :class:`BalancedDistributedSampler` over the index.

        Built entirely from the size index (no payload reads); the
        sampler's ``shard_ids`` let it order each rank's bins by dominant
        shard so a streaming epoch walks shards mostly sequentially.
        """
        from ..distribution.sampler import BalancedDistributedSampler

        return BalancedDistributedSampler(
            self.size_index.n_atoms,
            capacity,
            num_replicas,
            shuffle=shuffle,
            seed=seed,
            size_metric=size_metric,
            shard_ids=self.size_index.shard_id,
        )


# -- pack helpers --------------------------------------------------------------


def pack_graphs(
    graphs: Iterable[MolecularGraph],
    path,
    shard_size: int = 256,
    cutoff: Optional[float] = None,
    resident_shards: int = 4,
) -> ShardedDataset:
    """Pack an iterable of structures into a sharded dataset directory."""
    with ShardWriter(path, shard_size=shard_size, cutoff=cutoff) as w:
        w.add_all(graphs)
    return ShardedDataset(path, resident_shards=resident_shards)


def pack_training_set(
    path,
    n_samples: int,
    systems: Optional[Sequence[str]] = None,
    seed: int = 0,
    cutoff: float = DEFAULT_CUTOFF,
    max_atoms: int = 100,
    shard_size: int = 256,
    label: bool = True,
    potential: Optional[ReferencePotential] = None,
    resident_shards: int = 4,
) -> ShardedDataset:
    """Generate, label (batched) and pack a runnable training set.

    The coordinate-level twin of :func:`build_training_set` that lands on
    disk: structures get neighbor lists at ``cutoff``, labels are
    attached through the vectorized batch path of
    :func:`repro.data.labels.attach_labels`, and everything is packed
    through :class:`ShardWriter` (Welford statistics ride along).
    """
    graphs = build_training_set(
        n_samples, systems=systems, seed=seed, cutoff=cutoff, max_atoms=max_atoms
    )
    if label:
        attach_labels(graphs, potential or ReferencePotential(cutoff=cutoff), batch=True)
    return pack_graphs(
        graphs,
        path,
        shard_size=shard_size,
        cutoff=cutoff,
        resident_shards=resident_shards,
    )
