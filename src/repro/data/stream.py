"""Double-buffered streaming loader: overlap batch construction with compute.

Once compiled plans dominate step time, one background thread is enough
to hide batch construction (shard read + neighbor-list filtering +
collation, all inside the ``fetch`` callable — typically
``Trainer._collate`` routed through ``CollateCache``) behind the
previous batch's compute.  :class:`StreamingLoader` runs the epoch plan's
``fetch`` calls on that thread into a bounded queue (``depth`` slots —
double-buffering at the default 2) and yields ready batches to the
training loop.

The overlap is *measured*, not assumed: :class:`StreamStats` records how
long the consumer blocked waiting on the queue (``stall_seconds``), how
long the producer spent fetching (``fetch_seconds``), and the queue
depth found on each get — ``bench_data.py`` bounds the stall fraction on
a warmed run.

Crash/resume: the loader tracks ``next_step`` (the first plan step not
yet yielded).  A fetch or consumer-side failure leaves the loader
closeable and the epoch resumable from ``next_step`` with a fresh
loader — the failed step itself is retried, never skipped.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from queue import Empty, Full, Queue
from typing import Any, Callable, Iterator, List, Sequence, Tuple

__all__ = ["StreamingLoader", "StreamStats"]

_DONE = object()


@dataclass
class StreamStats:
    """Counters measuring prefetch/compute overlap quality."""

    batches: int = 0
    stalls: int = 0
    stall_seconds: float = 0.0
    fetch_seconds: float = 0.0
    depth_sum: int = 0
    max_depth: int = 0

    @property
    def mean_depth(self) -> float:
        """Mean queue depth observed at consume time (≈``depth`` when the
        producer keeps up, →0 when the consumer is starved)."""
        return self.depth_sum / self.batches if self.batches else 0.0

    @property
    def stall_fraction_of_fetch(self) -> float:
        """Stall time as a fraction of total fetch time — 0 means batch
        construction was fully hidden behind compute."""
        if self.fetch_seconds <= 0.0:
            return 0.0
        return self.stall_seconds / self.fetch_seconds

    def merge(self, other: "StreamStats") -> None:
        self.batches += other.batches
        self.stalls += other.stalls
        self.stall_seconds += other.stall_seconds
        self.fetch_seconds += other.fetch_seconds
        self.depth_sum += other.depth_sum
        self.max_depth = max(self.max_depth, other.max_depth)


@dataclass
class _Failure:
    step: int
    error: BaseException


class StreamingLoader:
    """Iterate ``(step, fetch(*plan[step]))`` with background prefetch.

    Parameters
    ----------
    plan:
        The epoch plan: a sequence of argument tuples, one per batch —
        for training, ``(indices, capacity)`` pairs from
        :func:`repro.graphs.pipeline.epoch_plan_bins`.
    fetch:
        Called with one plan entry unpacked, on the prefetch thread.
        Must be safe to run concurrently with the consumer's compute;
        ``Trainer._collate`` qualifies because during a streamed epoch
        only this thread touches the collate cache and the dataset maps.
    depth:
        Queue capacity — the number of batches fetched ahead.  2 is
        classic double-buffering: one batch in compute, one ready.
    start:
        First plan step to fetch (resume point after a mid-epoch crash).

    Single-shot: iterate once, then :meth:`close` (iterating to
    exhaustion closes automatically).  A fetch error is re-raised in the
    consumer at the failing step, with ``next_step`` pointing at it so a
    fresh loader can retry from there.
    """

    def __init__(
        self,
        plan: Sequence[Tuple],
        fetch: Callable[..., Any],
        depth: int = 2,
        start: int = 0,
    ) -> None:
        if depth <= 0:
            raise ValueError("depth must be positive")
        if not 0 <= start <= len(plan):
            raise ValueError(f"start={start} outside plan of {len(plan)} steps")
        self.plan = list(plan)
        self.fetch = fetch
        self.depth = int(depth)
        self.start = int(start)
        self.stats = StreamStats()
        self._completed = 0
        self._queue: Queue = Queue(maxsize=self.depth)
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._producer, name="stream-prefetch", daemon=True
        )
        self._started = False
        self._closed = False

    # -- producer --------------------------------------------------------------

    def _producer(self) -> None:
        for step in range(self.start, len(self.plan)):
            if self._stop.is_set():
                return
            t0 = time.perf_counter()
            try:
                item = (step, self.fetch(*self.plan[step]))
            except BaseException as exc:  # propagated to the consumer
                self._put(_Failure(step, exc))
                return
            self.stats.fetch_seconds += time.perf_counter() - t0
            if not self._put(item):
                return
        self._put(_DONE)

    def _put(self, item) -> bool:
        """Blocking put that stays responsive to close()."""
        while not self._stop.is_set():
            try:
                self._queue.put(item, timeout=0.05)
                return True
            except Full:
                continue
        return False

    # -- consumer --------------------------------------------------------------

    @property
    def next_step(self) -> int:
        """First plan step not yet yielded — the resume point."""
        return self.start + self._completed

    def __iter__(self) -> Iterator[Tuple[int, Any]]:
        if self._closed:
            raise RuntimeError("loader already closed")
        if not self._started:
            self._started = True
            self._thread.start()
        while True:
            depth = self._queue.qsize()
            t0 = time.perf_counter()
            item = self._queue.get()
            waited = time.perf_counter() - t0
            if item is _DONE:
                self.close()
                return
            if isinstance(item, _Failure):
                self.close()
                raise item.error
            self.stats.batches += 1
            self.stats.depth_sum += depth
            self.stats.max_depth = max(self.stats.max_depth, depth)
            if depth == 0 and waited > 1e-5:
                self.stats.stalls += 1
                self.stats.stall_seconds += waited
            self._completed += 1
            yield item

    def run(self) -> List[Any]:
        """Drain the whole plan; returns the fetched batches in order."""
        return [batch for _, batch in self]

    def close(self) -> None:
        """Stop prefetching and join the thread (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self._stop.set()
        if self._started:
            while self._thread.is_alive():
                try:  # unblock a producer stuck in put()
                    self._queue.get_nowait()
                except Empty:
                    pass
                self._thread.join(timeout=0.05)

    def __enter__(self) -> "StreamingLoader":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
