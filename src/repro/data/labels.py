"""Reference potential: the synthetic "DFT" used to label training data.

The paper trains on DFT energies/forces, which cannot be computed offline.
We substitute a smooth, species-aware classical potential — per-species
atomic reference energies plus a shifted pairwise Morse-like term — so the
loss-parity experiment (Figure 9) trains against a well-defined, learnable
target with realistic structure (short-range repulsion, attractive well,
smooth cutoff).  What matters for the experiment is *comparability between
baseline and optimized models*, not chemical accuracy.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List

import numpy as np

from ..graphs.molecular_graph import MolecularGraph

__all__ = ["ReferencePotential", "attach_labels"]


class ReferencePotential:
    """Smooth synthetic interatomic potential.

    ``E = sum_i e0(z_i) + sum_{(j,i) edges} 0.5 * phi(r_ji; z_j, z_i)``

    with ``phi`` a Morse-like pair term whose depth/width depend on the
    species pair, multiplied by a polynomial cutoff envelope so the energy
    is exactly zero at the graph cutoff (keeping labels consistent with the
    graph topology the model sees).
    """

    def __init__(self, cutoff: float = 4.5, seed: int = 7) -> None:
        self.cutoff = cutoff
        self._rng = np.random.default_rng(seed)
        self._e0: Dict[int, float] = {}
        self._pair: Dict[tuple, tuple] = {}

    def _species_energy(self, z: int) -> float:
        if z not in self._e0:
            rng = np.random.default_rng((z * 2654435761) % 2**32)
            self._e0[z] = float(rng.uniform(-5.0, -1.0))
        return self._e0[z]

    def _pair_params(self, z1: int, z2: int) -> tuple:
        key = (min(z1, z2), max(z1, z2))
        if key not in self._pair:
            rng = np.random.default_rng((key[0] * 73856093 + key[1] * 19349663) % 2**32)
            depth = float(rng.uniform(0.1, 0.6))  # eV
            r0 = float(rng.uniform(1.8, 2.8))  # Angstrom
            width = float(rng.uniform(1.0, 2.0))
            self._pair[key] = (depth, r0, width)
        return self._pair[key]

    def _envelope(self, r: np.ndarray) -> np.ndarray:
        x = np.clip(r / self.cutoff, 0.0, 1.0)
        return 1.0 - 10.0 * x**3 + 15.0 * x**4 - 6.0 * x**5

    def energy(self, graph: MolecularGraph) -> float:
        """Total energy (eV) of a graph with a built neighbor list."""
        if not graph.has_edges:
            raise ValueError("graph needs a neighbor list for pair terms")
        e = sum(self._species_energy(int(z)) for z in graph.species)
        if graph.n_edges == 0:
            return float(e)
        vec = graph.displacement_vectors()
        r = np.linalg.norm(vec, axis=1)
        send, recv = graph.edge_index
        pair_e = np.zeros_like(r)
        # Group edges by species pair for vectorized evaluation.
        z1 = graph.species[send]
        z2 = graph.species[recv]
        lo = np.minimum(z1, z2)
        hi = np.maximum(z1, z2)
        pair_code = lo * 1000 + hi
        for code in np.unique(pair_code):
            mask = pair_code == code
            depth, r0, width = self._pair_params(int(code // 1000), int(code % 1000))
            # Morse-like well with a *bounded* repulsive core (x capped):
            # covalently-bonded pairs then contribute a finite positive
            # term instead of an exponential wall, keeping the label
            # distribution well-conditioned for regression.
            x = np.minimum(np.exp(-width * (r[mask] - r0)), 3.0)
            pair_e[mask] = depth * (x * x - 2.0 * x)
        pair_e *= self._envelope(r)
        return float(e + 0.5 * pair_e.sum())

    def energies(self, graphs: Iterable[MolecularGraph]) -> np.ndarray:
        """Energies of many graphs in one vectorized pass.

        Labeling one at a time re-runs ``np.unique`` over pair codes and
        one ``exp`` launch per (graph, species pair); here the edge
        arrays of all graphs are concatenated so each species pair costs
        a single vectorized evaluation over the whole batch.  The pair
        sum is still reduced per graph over the same contiguous edge
        slice (and the elementwise terms are identical ops), so results
        match :meth:`energy` to summation reassociation of the species
        term (~1e-15 relative; asserted at 1e-12 in the tests).
        """
        graphs = list(graphs)
        n = len(graphs)
        if n == 0:
            return np.zeros(0)
        for i, g in enumerate(graphs):
            if not g.has_edges:
                raise ValueError(f"graph {i} needs a neighbor list for pair terms")
        n_atoms = np.array([g.n_atoms for g in graphs], dtype=np.int64)
        uz, inv = np.unique(
            np.concatenate([g.species for g in graphs]), return_inverse=True
        )
        e0 = np.array([self._species_energy(int(z)) for z in uz])
        atom_graph = np.repeat(np.arange(n), n_atoms)
        out = np.bincount(atom_graph, weights=e0[inv], minlength=n)
        n_edges = np.array([g.n_edges for g in graphs], dtype=np.int64)
        if n_edges.sum() == 0:
            return out
        vec = np.concatenate([g.displacement_vectors() for g in graphs])
        r = np.linalg.norm(vec, axis=1)
        z1 = np.concatenate([g.species[g.edge_index[0]] for g in graphs])
        z2 = np.concatenate([g.species[g.edge_index[1]] for g in graphs])
        lo = np.minimum(z1, z2)
        hi = np.maximum(z1, z2)
        pair_code = lo * 1000 + hi
        pair_e = np.zeros_like(r)
        for code in np.unique(pair_code):
            mask = pair_code == code
            depth, r0, width = self._pair_params(int(code // 1000), int(code % 1000))
            x = np.minimum(np.exp(-width * (r[mask] - r0)), 3.0)
            pair_e[mask] = depth * (x * x - 2.0 * x)
        pair_e *= self._envelope(r)
        edge_off = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(n_edges, out=edge_off[1:])
        for i in range(n):
            out[i] += 0.5 * pair_e[edge_off[i] : edge_off[i + 1]].sum()
        return out


def attach_labels(
    graphs: Iterable[MolecularGraph],
    potential: ReferencePotential | None = None,
    batch: bool = False,
) -> List[MolecularGraph]:
    """Label each graph's ``energy`` with the reference potential, in place.

    ``batch=True`` routes through the vectorized
    :meth:`ReferencePotential.energies` — the path the shard packer uses,
    one species-pair kernel launch per batch instead of per graph.
    """
    potential = potential or ReferencePotential()
    out = list(graphs)
    if batch:
        for g, e in zip(out, potential.energies(out)):
            g.energy = float(e)
        return out
    for g in out:
        g.energy = potential.energy(g)
    return out
