"""Dataset characterization: Table 3 and Figure 5 of the paper.

Table 3 reports, per chemical system: number of graphs, proportion of the
combined dataset, and the vertex-count range.  Figure 5 shows per-system
histograms of vertex and edge counts (log scale) and sparsity
distributions at the 4.5 Å cutoff.  Both are regenerated here, Table 3
from the composite spec and Figure 5 from materialized structures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..graphs.neighborlist import DEFAULT_CUTOFF, build_neighbor_list
from .composite import DatasetSpec
from .systems import SYSTEM_NAMES, SYSTEMS, generate_structure

__all__ = ["Table3Row", "table3", "SystemHistogram", "figure5_statistics"]


@dataclass(frozen=True)
class Table3Row:
    """One row of Table 3."""

    dataset: str
    num_graphs: int
    proportion: float  # fraction of the combined dataset
    vertices_min: int
    vertices_max: int

    def proportion_label(self) -> str:
        """The paper's rounded percentage label (e.g. "<1%", "60%")."""
        pct = 100.0 * self.proportion
        return "<1%" if pct < 1.0 else f"{pct:.0f}%"


def table3(spec: DatasetSpec) -> List[Table3Row]:
    """Compute Table 3 rows from a dataset spec."""
    total = spec.n_samples
    rows = []
    for sys_idx, name in enumerate(spec.system_names):
        mask = spec.system_id == sys_idx
        count = int(mask.sum())
        if count == 0:
            continue
        sizes = spec.n_atoms[mask]
        rows.append(
            Table3Row(name, count, count / total, int(sizes.min()), int(sizes.max()))
        )
    return rows


@dataclass
class SystemHistogram:
    """Per-system distributions backing one column of Figure 5."""

    system: str
    vertex_counts: np.ndarray
    edge_counts: np.ndarray
    sparsities: np.ndarray  # fraction of possible directed edges present

    def vertex_histogram(self, bins: int = 20) -> tuple:
        """Log-scale vertex-count histogram (counts, bin edges)."""
        lo = max(self.vertex_counts.min(), 1)
        edges = np.geomspace(lo, self.vertex_counts.max() + 1, bins + 1)
        counts, edges = np.histogram(self.vertex_counts, bins=edges)
        return counts, edges

    def edge_histogram(self, bins: int = 20) -> tuple:
        """Log-scale edge-count histogram (counts, bin edges)."""
        lo = max(self.edge_counts.min(), 1)
        edges = np.geomspace(lo, self.edge_counts.max() + 1, bins + 1)
        counts, edges = np.histogram(self.edge_counts, bins=edges)
        return counts, edges


def figure5_statistics(
    samples_per_system: int = 30,
    cutoff: float = DEFAULT_CUTOFF,
    seed: int = 0,
    systems: Optional[List[str]] = None,
) -> Dict[str, SystemHistogram]:
    """Materialize structures and measure Figure 5's distributions.

    Structures are generated with the per-system geometry generators and
    neighbor lists are built at the paper's cutoff, so edge counts and
    sparsities are *measured*, not modeled.
    """
    rng = np.random.default_rng(seed)
    out: Dict[str, SystemHistogram] = {}
    for name in systems or SYSTEM_NAMES:
        v, e, s = [], [], []
        for _ in range(samples_per_system):
            g = generate_structure(name, rng)
            build_neighbor_list(g, cutoff=cutoff)
            v.append(g.n_atoms)
            e.append(g.n_edges)
            s.append(g.sparsity())
        out[name] = SystemHistogram(
            name, np.asarray(v), np.asarray(e), np.asarray(s)
        )
    return out


def measured_mean_degrees(stats: Dict[str, SystemHistogram]) -> Dict[str, float]:
    """Mean directed degree per system — calibrates SystemSpec.mean_degree."""
    return {
        name: float((h.edge_counts / np.maximum(h.vertex_counts, 1)).mean())
        for name, h in stats.items()
    }


def per_atom_energy_statistics(energy, n_atoms) -> tuple:
    """Direct (two-pass) per-atom energy mean/std over labeled samples.

    The reference computation that the shard packer's incremental Welford
    statistics (:class:`repro.data.store.DatasetStatistics`) are verified
    against — same population std (ddof=0) convention as
    ``EnergyScaler.fit``.  ``NaN`` energies mark unlabeled samples.

    Returns ``(mean, std, n_labeled)``; mean/std are 0.0 when nothing is
    labeled.
    """
    energy = np.asarray(energy, dtype=np.float64)
    n_atoms = np.asarray(n_atoms, dtype=np.float64)
    labeled = np.isfinite(energy)
    if not labeled.any():
        return 0.0, 0.0, 0
    per_atom = energy[labeled] / n_atoms[labeled]
    return float(per_atom.mean()), float(per_atom.std()), int(labeled.sum())


__all__.append("measured_mean_degrees")
__all__.append("per_atom_energy_statistics")
