"""The composite 2.65 M-sample dataset specification and its splits.

The load-balancing experiments only need the *size distribution* of the
dataset — vertex counts, edge counts and system labels — not coordinates.
:class:`DatasetSpec` samples exactly the composition of Table 3 into flat
NumPy arrays in a fraction of a second, which is what lets the strong- and
weak-scaling simulations cover all 2.65 M samples.

For runnable training data (coordinates + labels) see
:func:`build_training_set`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..graphs.molecular_graph import MolecularGraph
from ..graphs.neighborlist import DEFAULT_CUTOFF, build_neighbor_list
from .systems import SYSTEM_NAMES, SYSTEMS, generate_structure

__all__ = ["DatasetSpec", "build_spec", "build_training_set", "SPLIT_SIZES"]

# Paper §5.1.1: strong scaling uses the full ~2.65 M dataset; weak scaling
# splits it into small (~0.6 M) and medium (~1.2 M) subsets.
SPLIT_SIZES: Dict[str, float] = {"small": 0.6e6, "medium": 1.2e6, "large": 2.65e6}


@dataclass
class DatasetSpec:
    """Size-level description of a molecular-graph dataset.

    Attributes
    ----------
    n_atoms:
        ``(n_samples,)`` vertex counts.
    n_edges:
        ``(n_samples,)`` estimated directed edge counts.
    system_id:
        ``(n_samples,)`` index into :attr:`system_names`.
    system_names:
        System label per id.
    """

    n_atoms: np.ndarray
    n_edges: np.ndarray
    system_id: np.ndarray
    system_names: List[str] = field(default_factory=lambda: list(SYSTEM_NAMES))

    @property
    def n_samples(self) -> int:
        return int(self.n_atoms.size)

    @property
    def total_tokens(self) -> int:
        """Total atom (token) count over the dataset."""
        return int(self.n_atoms.sum())

    def subset(self, indices: np.ndarray) -> "DatasetSpec":
        """A new spec restricted to the given sample indices."""
        return DatasetSpec(
            self.n_atoms[indices],
            self.n_edges[indices],
            self.system_id[indices],
            list(self.system_names),
        )

    def shuffled(self, rng: np.random.Generator) -> "DatasetSpec":
        """A randomly permuted copy (epoch shuffling)."""
        perm = rng.permutation(self.n_samples)
        return self.subset(perm)

    def system_counts(self) -> Dict[str, int]:
        """Sample count per system (Table 3's "Num. Graphs" column)."""
        counts = np.bincount(self.system_id, minlength=len(self.system_names))
        return {name: int(c) for name, c in zip(self.system_names, counts)}


def build_spec(
    scale: float | str = "large",
    seed: int = 0,
) -> DatasetSpec:
    """Sample a dataset spec with Table 3's composition.

    Parameters
    ----------
    scale:
        ``"small"`` (~0.6 M), ``"medium"`` (~1.2 M), ``"large"`` (~2.65 M)
        or a float fraction of the full dataset.
    seed:
        RNG seed; the spec is deterministic per (scale, seed).

    Returns
    -------
    A shuffled :class:`DatasetSpec` whose per-system counts scale Table 3
    proportionally.
    """
    if isinstance(scale, str):
        total_target = SPLIT_SIZES[scale]
        frac = total_target / SPLIT_SIZES["large"]
    else:
        frac = float(scale)
        if not 0.0 < frac <= 1.0:
            raise ValueError("scale fraction must be in (0, 1]")
    rng = np.random.default_rng(seed)
    atoms_parts, edges_parts, sys_parts = [], [], []
    for sys_idx, name in enumerate(SYSTEM_NAMES):
        spec = SYSTEMS[name]
        count = max(int(round(spec.num_graphs * frac)), 1)
        sizes = spec.size_sampler(rng, count)
        # Edge estimate: per-sample mean degree with log-normal spread,
        # shrunk for small graphs where the cutoff sphere is not filled.
        degree = spec.mean_degree * rng.lognormal(0.0, spec.degree_spread, count)
        fill = np.minimum(1.0, (sizes / 30.0) ** (1.0 / 3.0))
        edges = np.maximum(np.round(sizes * degree * fill), 0).astype(np.int64)
        edges = np.minimum(edges, sizes * (sizes - 1))
        atoms_parts.append(sizes)
        edges_parts.append(edges)
        sys_parts.append(np.full(count, sys_idx, dtype=np.int64))
    ds = DatasetSpec(
        np.concatenate(atoms_parts),
        np.concatenate(edges_parts),
        np.concatenate(sys_parts),
    )
    return ds.shuffled(rng)


def build_training_set(
    n_samples: int,
    systems: Optional[Sequence[str]] = None,
    seed: int = 0,
    cutoff: float = DEFAULT_CUTOFF,
    max_atoms: int = 100,
) -> List[MolecularGraph]:
    """Materialize a small coordinate-level dataset with neighbor lists.

    Used by the loss-parity experiment (Figure 9) and the examples, where
    actual training happens.  Samples are drawn round-robin from the
    requested systems; sizes are truncated at ``max_atoms`` to keep pure
    NumPy training tractable.

    Labels are attached separately via
    :func:`repro.data.labels.attach_labels`.
    """
    if systems is None:
        systems = ["Water clusters", "MPtrj", "TMD", "HEA"]
    rng = np.random.default_rng(seed)
    graphs: List[MolecularGraph] = []
    for i in range(n_samples):
        name = systems[i % len(systems)]
        spec = SYSTEMS[name]
        lo, hi = spec.vertex_range
        hi = min(hi, max_atoms)
        if hi < lo:
            raise ValueError(f"{name} cannot fit under max_atoms={max_atoms}")
        for _ in range(50):
            n = int(spec.size_sampler(rng, 1)[0])
            if n <= hi:
                break
        else:
            n = hi
        g = generate_structure(name, rng, max(n, lo))
        build_neighbor_list(g, cutoff=cutoff)
        graphs.append(g)
    return graphs
