"""Synthetic chemistry datasets reproducing the paper's Table 3 composition."""

from .systems import SYSTEM_NAMES, SYSTEMS, SystemSpec, generate_structure, sample_sizes
from .composite import SPLIT_SIZES, DatasetSpec, build_spec, build_training_set
from .labels import ReferencePotential, attach_labels
from .statistics import (
    SystemHistogram,
    Table3Row,
    figure5_statistics,
    measured_mean_degrees,
    per_atom_energy_statistics,
    table3,
)
from .store import (
    DatasetStatistics,
    ShardedDataset,
    ShardedDatasetError,
    ShardTruncatedError,
    ShardWriter,
    SizeIndex,
    StaleIndexError,
    load_size_index,
    pack_graphs,
    pack_training_set,
)
from .stream import StreamingLoader, StreamStats

__all__ = [
    "SYSTEMS",
    "SYSTEM_NAMES",
    "SystemSpec",
    "generate_structure",
    "sample_sizes",
    "DatasetSpec",
    "build_spec",
    "build_training_set",
    "SPLIT_SIZES",
    "ReferencePotential",
    "attach_labels",
    "Table3Row",
    "table3",
    "SystemHistogram",
    "figure5_statistics",
    "measured_mean_degrees",
    "per_atom_energy_statistics",
    "DatasetStatistics",
    "ShardWriter",
    "ShardedDataset",
    "ShardedDatasetError",
    "ShardTruncatedError",
    "StaleIndexError",
    "SizeIndex",
    "load_size_index",
    "pack_graphs",
    "pack_training_set",
    "StreamingLoader",
    "StreamStats",
]
