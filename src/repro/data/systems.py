"""Synthetic generators for the eight chemical systems of the paper (Table 3).

Each system provides two things:

* a **size sampler** reproducing the vertex-count range and distribution the
  paper reports (Table 3 / Figure 5), used to build the 2.65 M-sample
  composite *spec* without materializing coordinates;
* a **structure generator** producing physically plausible 3D coordinates
  (correct densities, bond lengths and periodicity class), used wherever
  real graphs are needed — statistics (Figure 5), training (Figure 9) and
  the examples.

The generators are deliberately simple (no real DFT data is available
offline) but preserve the properties the paper's experiments depend on:
the spread of graph sizes, the periodic/isolated split, and the per-system
edge densities at the 4.5 Å cutoff.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..graphs.molecular_graph import ATOMIC_NUMBERS, MolecularGraph

__all__ = ["SystemSpec", "SYSTEMS", "SYSTEM_NAMES", "generate_structure", "sample_sizes"]

_Z = ATOMIC_NUMBERS


def _min_dist_ok(pos: np.ndarray, new: np.ndarray, dmin: float) -> bool:
    if pos.shape[0] == 0:
        return True
    d2 = np.sum((pos - new) ** 2, axis=1)
    return bool(d2.min() >= dmin * dmin)


def _random_packing(
    rng: np.random.Generator,
    n: int,
    volume_per_atom: float,
    dmin: float,
    max_tries: int = 200,
) -> Tuple[np.ndarray, np.ndarray]:
    """Pack ``n`` points into a cube at the given density with min spacing.

    Returns (positions, cell).  Falls back to jittered-grid placement when
    rejection sampling stalls (high densities).
    """
    side = (n * volume_per_atom) ** (1.0 / 3.0)
    cell = np.eye(3) * side
    pos = np.zeros((0, 3))
    placed: List[np.ndarray] = []
    for _ in range(n):
        ok = False
        for _ in range(max_tries):
            cand = rng.uniform(0.0, side, 3)
            if _min_dist_ok(pos, cand, dmin):
                placed.append(cand)
                pos = np.asarray(placed)
                ok = True
                break
        if not ok:
            break
    if len(placed) < n:
        # Jittered grid fallback: always succeeds, approximately keeps dmin.
        per_side = int(math.ceil(n ** (1.0 / 3.0)))
        spacing = side / per_side
        grid = np.array(
            [
                (i + 0.5, j + 0.5, k + 0.5)
                for i in range(per_side)
                for j in range(per_side)
                for k in range(per_side)
            ]
        )[:n]
        pos = grid * spacing + rng.uniform(-0.1, 0.1, (n, 3)) * spacing
    return pos, cell


def _add_water(rng: np.random.Generator, o_pos: np.ndarray) -> np.ndarray:
    """Positions of one water molecule (O, H, H) at a given oxygen site."""
    d_oh = 0.96
    angle = math.radians(104.5)
    # Random molecular orientation.
    u = rng.standard_normal(3)
    u /= np.linalg.norm(u)
    v = rng.standard_normal(3)
    v -= v @ u * u
    v /= np.linalg.norm(v)
    h1 = o_pos + d_oh * u
    h2 = o_pos + d_oh * (math.cos(angle) * u + math.sin(angle) * v)
    return np.stack([o_pos, h1, h2])


def _water_box(
    rng: np.random.Generator, n_molecules: int, density_mol_per_A3: float = 0.0334
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """A periodic box of water at ~1 g/cc.  Returns (pos, species, cell)."""
    o_sites, cell = _random_packing(
        rng, n_molecules, 1.0 / density_mol_per_A3, dmin=2.5
    )
    pos = np.concatenate([_add_water(rng, o) for o in o_sites], axis=0)
    species = np.tile([_Z["O"], _Z["H"], _Z["H"]], n_molecules)
    return pos, species, cell


# -- per-system structure generators ------------------------------------------------


def _gen_water_cluster(rng: np.random.Generator, n_atoms: int) -> MolecularGraph:
    """Isolated (H2O)_n cluster, 9-75 atoms (3-25 molecules)."""
    n_mol = max(n_atoms // 3, 1)
    # Compact cluster: oxygens packed in a sphere with hydrogen-bond spacing.
    o_sites: List[np.ndarray] = []
    radius = 1.8 * n_mol ** (1.0 / 3.0) + 1.0
    pos = np.zeros((0, 3))
    while len(o_sites) < n_mol:
        cand = rng.standard_normal(3)
        cand = cand / np.linalg.norm(cand) * radius * rng.uniform(0, 1) ** (1 / 3)
        if _min_dist_ok(pos, cand, 2.5):
            o_sites.append(cand)
            pos = np.asarray(o_sites)
    atoms = np.concatenate([_add_water(rng, o) for o in o_sites], axis=0)
    species = np.tile([_Z["O"], _Z["H"], _Z["H"]], n_mol)
    return MolecularGraph(atoms, species, system="Water clusters")


def _gen_liquid_water(rng: np.random.Generator, n_atoms: int) -> MolecularGraph:
    """Periodic liquid water box; the paper's samples are all 768 atoms."""
    n_mol = max(n_atoms // 3, 1)
    pos, species, cell = _water_box(rng, n_mol)
    return MolecularGraph(pos, species, cell=cell, pbc=True, system="Liquid water")


def _fcc_positions(n_cells: Tuple[int, int, int], a: float) -> np.ndarray:
    basis = np.array(
        [[0.0, 0.0, 0.0], [0.5, 0.5, 0.0], [0.5, 0.0, 0.5], [0.0, 0.5, 0.5]]
    )
    sites = []
    for i in range(n_cells[0]):
        for j in range(n_cells[1]):
            for k in range(n_cells[2]):
                sites.append((basis + np.array([i, j, k])) * a)
    return np.concatenate(sites, axis=0)


def _gen_cuni(rng: np.random.Generator, n_atoms: int) -> MolecularGraph:
    """Cu-Ni multilayer alloy: FCC supercell, 492-500 atoms, vacancies."""
    a = 3.59
    sites = _fcc_positions((5, 5, 5), a)  # 500 sites
    if n_atoms < sites.shape[0]:
        keep = rng.choice(sites.shape[0], size=n_atoms, replace=False)
        sites = sites[np.sort(keep)]
    # Layered Cu/Ni composition (the dataset models sheared multilayers).
    layer = (sites[:, 2] // (a * 1.25)).astype(int)
    species = np.where(layer % 2 == 0, _Z["Cu"], _Z["Ni"]).astype(np.int64)
    cell = np.eye(3) * (5 * a)
    pos = sites + rng.normal(0.0, 0.05, sites.shape)
    return MolecularGraph(pos, species, cell=cell, pbc=True, system="CuNi")


def _gen_hea(rng: np.random.Generator, n_atoms: int) -> MolecularGraph:
    """High-entropy alloy: small FCC cell, 5 random transition metals."""
    a = 3.8
    target = max(n_atoms // 4, 1)
    nx = max(int(round(target ** (1.0 / 3.0))), 1)
    dims = [nx, nx, nx]
    while np.prod(dims) < target:
        dims[int(np.argmin(dims))] += 1
    sites = _fcc_positions(tuple(dims), a)[:n_atoms]
    elements = [_Z[e] for e in ("Fe", "Co", "Ni", "Cr", "Mn")]
    species = rng.choice(elements, size=sites.shape[0])
    cell = np.diag([dims[0] * a, dims[1] * a, dims[2] * a])
    pos = sites + rng.normal(0.0, 0.08, sites.shape)
    return MolecularGraph(pos, species, cell=cell, pbc=True, system="HEA")


_MPTRJ_ELEMENTS = [
    _Z[e] for e in ("H", "O", "Al", "Si", "S", "Ti", "Fe", "Ni", "Cu", "Zn", "Mo", "W")
]


def _gen_mptrj(rng: np.random.Generator, n_atoms: int) -> MolecularGraph:
    """Materials-Project-like random crystal: 1-444 atoms, random species."""
    vol_per_atom = rng.uniform(10.0, 25.0)
    pos, cell = _random_packing(rng, n_atoms, vol_per_atom, dmin=1.8)
    n_species = int(rng.integers(1, min(5, n_atoms) + 1))
    palette = rng.choice(_MPTRJ_ELEMENTS, size=n_species, replace=False)
    species = rng.choice(palette, size=n_atoms)
    return MolecularGraph(pos, species, cell=cell, pbc=True, system="MPtrj")


def _gen_tmd(rng: np.random.Generator, n_atoms: int) -> MolecularGraph:
    """Transition-metal dichalcogenide MX2 monolayer slab (16-96 atoms)."""
    n_units = max(n_atoms // 3, 4)
    nx = max(int(round(math.sqrt(n_units))), 2)
    ny = max((n_units + nx - 1) // nx, 2)
    a = 3.18
    m_el = int(rng.choice([_Z["Mo"], _Z["W"], _Z["Ti"]]))
    x_el = int(rng.choice([_Z["S"], _Z["Se"], _Z["Te"]]))
    pos_list, species_list = [], []
    count = 0
    for i in range(nx):
        for j in range(ny):
            if count >= n_units:
                break
            base = np.array([i * a + (j % 2) * a / 2, j * a * math.sqrt(3) / 2, 0.0])
            pos_list += [base, base + [a / 2, a / (2 * math.sqrt(3)), 1.56],
                         base + [a / 2, a / (2 * math.sqrt(3)), -1.56]]
            species_list += [m_el, x_el, x_el]
            count += 1
    pos = np.asarray(pos_list) + rng.normal(0.0, 0.03, (len(pos_list), 3))
    cell = np.diag([nx * a, ny * a * math.sqrt(3) / 2, 25.0])
    species = np.asarray(species_list)
    return MolecularGraph(pos, species, cell=cell, pbc=True, system="TMD")


def _gen_zeolite(rng: np.random.Generator, n_atoms: int) -> MolecularGraph:
    """Zeolite-like Si-O framework with solvent molecules in the pores."""
    # Si on a cubic sublattice, bridging O on the bond midpoints: 4 atoms
    # per SiO3 repeat unit in this simplified framework.
    n_units = max(n_atoms // 4, 8)
    nx = max(int(round(n_units ** (1.0 / 3.0))), 2)
    a = 3.1  # Si-Si spacing through the bridging oxygen
    si_sites = []
    for i in range(nx):
        for j in range(nx):
            for k in range(nx):
                si_sites.append(np.array([i, j, k], dtype=float) * a)
    si_sites = np.asarray(si_sites)[:n_units]
    o_sites = []
    for axis in range(3):
        shift = np.zeros(3)
        shift[axis] = a / 2
        o_sites.append(si_sites + shift)
    o_sites = np.concatenate(o_sites, axis=0)[: max(n_atoms - len(si_sites), 0)]
    pos = np.concatenate([si_sites, o_sites], axis=0)
    species = np.concatenate(
        [np.full(len(si_sites), _Z["Si"]), np.full(len(o_sites), _Z["O"])]
    )
    pos = pos + rng.normal(0.0, 0.05, pos.shape)
    cell = np.eye(3) * (nx * a)
    return MolecularGraph(pos, species, cell=cell, pbc=True, system="Zeolite")


def _gen_al_hcl(rng: np.random.Generator, n_atoms: int) -> MolecularGraph:
    """Al(3+) in aqueous HCl: one Al, a few Cl, the rest water (281 atoms)."""
    n_cl = 4
    n_water = max((n_atoms - 1 - n_cl) // 3, 1)
    pos, species, cell = _water_box(rng, n_water)
    side = cell[0, 0]
    extras, extra_species = [], []
    for z in [_Z["Al"]] + [_Z["Cl"]] * n_cl:
        for _ in range(200):
            cand = rng.uniform(0, side, 3)
            if _min_dist_ok(pos, cand, 2.0):
                break
        extras.append(cand)
        extra_species.append(z)
        pos = np.concatenate([pos, cand[None]], axis=0)
    species = np.concatenate([species[: n_water * 3], np.asarray(extra_species)])
    return MolecularGraph(pos[: species.size], species, cell=cell, pbc=True, system="Al-HCl(aq)")


# -- size samplers -------------------------------------------------------------------


@dataclass(frozen=True)
class SystemSpec:
    """Metadata of one chemical system (one row of Table 3).

    Attributes
    ----------
    name:
        System label as printed in the paper.
    num_graphs:
        Sample count in the 2.65 M composite dataset.
    vertex_range:
        (min, max) atoms per sample.
    mean_degree:
        Average directed neighbors per atom at the 4.5 Å cutoff, used to
        estimate edge counts when coordinates are not materialized
        (calibrated against the structure generators).
    degree_spread:
        Multiplicative log-normal spread of per-sample mean degree.
    periodic:
        Whether samples are periodic.
    generator:
        Coordinate-level structure generator.
    size_sampler:
        ``f(rng, n) -> int array`` of vertex counts.
    """

    name: str
    num_graphs: int
    vertex_range: Tuple[int, int]
    mean_degree: float
    degree_spread: float
    periodic: bool
    generator: Callable[[np.random.Generator, int], MolecularGraph]
    size_sampler: Callable[[np.random.Generator, int], np.ndarray]


def _const_sizes(value: int):
    def sample(rng: np.random.Generator, n: int) -> np.ndarray:
        return np.full(n, value, dtype=np.int64)

    return sample


def _uniform_sizes(lo: int, hi: int, step: int = 1):
    def sample(rng: np.random.Generator, n: int) -> np.ndarray:
        vals = rng.integers(0, (hi - lo) // step + 1, size=n)
        return (lo + vals * step).astype(np.int64)

    return sample


def _mptrj_sizes(rng: np.random.Generator, n: int) -> np.ndarray:
    """Log-normal vertex counts clipped to [1, 444] — most MPtrj samples are
    small with a long tail (Figure 5, log-scale histogram)."""
    raw = rng.lognormal(mean=3.0, sigma=0.9, size=n)
    return np.clip(np.round(raw), 1, 444).astype(np.int64)


def _water_cluster_sizes(rng: np.random.Generator, n: int) -> np.ndarray:
    """3-25 water molecules (9-75 atoms), biased toward mid-size clusters."""
    mols = np.clip(np.round(rng.normal(12.0, 6.0, size=n)), 3, 25).astype(np.int64)
    return 3 * mols


SYSTEMS: Dict[str, SystemSpec] = {
    "Al-HCl(aq)": SystemSpec(
        "Al-HCl(aq)", 884, (281, 281), 32.0, 0.03, True, _gen_al_hcl, _const_sizes(281)
    ),
    "CuNi": SystemSpec(
        "CuNi", 74335, (492, 500), 30.0, 0.02, True, _gen_cuni,
        _uniform_sizes(492, 500),
    ),
    "HEA": SystemSpec(
        "HEA", 25628, (36, 48), 18.0, 0.03, True, _gen_hea, _uniform_sizes(36, 48, 4)
    ),
    "Liquid water": SystemSpec(
        "Liquid water", 190267, (768, 768), 33.0, 0.02, True, _gen_liquid_water,
        _const_sizes(768),
    ),
    "MPtrj": SystemSpec(
        "MPtrj", 1580312, (1, 444), 23.0, 0.35, True, _gen_mptrj, _mptrj_sizes
    ),
    "TMD": SystemSpec(
        "TMD", 219627, (16, 96), 17.0, 0.10, True, _gen_tmd, _uniform_sizes(16, 96, 3)
    ),
    "Water clusters": SystemSpec(
        "Water clusters", 460000, (9, 75), 12.0, 0.15, False, _gen_water_cluster,
        _water_cluster_sizes,
    ),
    "Zeolite": SystemSpec(
        "Zeolite", 99770, (203, 408), 48.0, 0.08, True, _gen_zeolite,
        _uniform_sizes(203, 407, 4),
    ),
}

SYSTEM_NAMES: List[str] = list(SYSTEMS)


def generate_structure(
    system: str, rng: np.random.Generator, n_atoms: Optional[int] = None
) -> MolecularGraph:
    """Generate one structure of the named system.

    ``n_atoms`` defaults to a draw from the system's size distribution; the
    generated structure may deviate by a few atoms (molecule granularity).
    """
    spec = SYSTEMS[system]
    if n_atoms is None:
        n_atoms = int(spec.size_sampler(rng, 1)[0])
    lo, hi = spec.vertex_range
    if not lo <= n_atoms <= hi:
        raise ValueError(
            f"{system} supports {lo}-{hi} atoms, requested {n_atoms}"
        )
    return spec.generator(rng, n_atoms)


def sample_sizes(system: str, rng: np.random.Generator, n: int) -> np.ndarray:
    """Draw ``n`` vertex counts from the system's size distribution."""
    return SYSTEMS[system].size_sampler(rng, n)
