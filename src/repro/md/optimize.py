"""Geometry optimization: FIRE relaxation on a calculator's forces.

FIRE (fast inertial relaxation engine) is the standard structural
relaxation algorithm used with machine-learned potentials; it is plain
damped dynamics with adaptive timestep and velocity/force mixing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from ..graphs.molecular_graph import MolecularGraph
from ..graphs.neighborlist import DEFAULT_CUTOFF, build_neighbor_list

__all__ = ["FIREResult", "fire_relax"]


@dataclass
class FIREResult:
    """Outcome of a FIRE relaxation."""

    converged: bool
    n_steps: int
    final_energy: float
    max_force: float
    energies: List[float]


def fire_relax(
    calculator,
    graph: MolecularGraph,
    fmax: float = 0.05,
    max_steps: int = 200,
    dt_start: float = 0.25,
    dt_max: float = 1.0,
    cutoff: float = DEFAULT_CUTOFF,
    rebuild_every: int = 5,
) -> FIREResult:
    """Relax a structure until ``max |F| < fmax`` (eV/A) or ``max_steps``.

    The graph's positions are updated in place; the neighbor list is
    refreshed periodically since relaxation changes the topology.
    """
    n_min, f_inc, f_dec, alpha_start, f_alpha = 5, 1.1, 0.5, 0.1, 0.99
    dt, alpha = dt_start, alpha_start
    steps_since_negative = 0
    v = np.zeros_like(graph.positions)

    build_neighbor_list(graph, cutoff=cutoff)
    energy, forces = calculator.energy_and_forces(graph)
    energies = [energy]
    for step in range(1, max_steps + 1):
        power = float(np.vdot(forces, v))
        if power > 0.0:
            steps_since_negative += 1
            f_norm = np.linalg.norm(forces)
            v_norm = np.linalg.norm(v)
            if f_norm > 0:
                v = (1.0 - alpha) * v + alpha * v_norm * forces / f_norm
            if steps_since_negative > n_min:
                dt = min(dt * f_inc, dt_max)
                alpha *= f_alpha
        else:
            steps_since_negative = 0
            dt *= f_dec
            alpha = alpha_start
            v[...] = 0.0
        v += dt * forces
        graph.positions += dt * v
        if step % rebuild_every == 0:
            build_neighbor_list(graph, cutoff=cutoff)
        energy, forces = calculator.energy_and_forces(graph)
        energies.append(energy)
        max_f = float(np.abs(forces).max()) if forces.size else 0.0
        if max_f < fmax:
            return FIREResult(True, step, energy, max_f, energies)
    return FIREResult(
        False,
        max_steps,
        energy,
        float(np.abs(forces).max()) if forces.size else 0.0,
        energies,
    )
