"""Calculators: the bridge between potentials and simulation drivers.

A calculator exposes ``energy_and_forces(graph)``; MD and geometry
optimization are written against this interface so they work with both
the trained MACE model and the synthetic reference potential (useful for
validating the drivers independently of the model).

Both calculators can own a :class:`repro.graphs.NeighborListCache`
(Verlet skin): pass a ``cutoff`` and the calculator keeps the graph's
edges exact at every evaluation while rebuilding the underlying cell
list only when an atom has moved more than ``skin / 2`` since the last
build.  Without a ``cutoff`` the caller manages neighbor lists, as
before.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..data.labels import ReferencePotential
from ..graphs.batch import collate
from ..graphs.molecular_graph import MolecularGraph
from ..graphs.pipeline import DEFAULT_SKIN, NeighborListCache
from ..runtime import resolve_plan_cache

__all__ = ["MACECalculator", "ReferenceCalculator"]


class MACECalculator:
    """Energies and forces from a (trained) MACE model.

    The model's autograd graph supplies exact forces ``-dE/dr``; energy
    and forces come from a *single* forward+backward pass
    (:meth:`repro.mace.MACE.energy_and_forces`).

    Parameters
    ----------
    model:
        A :class:`repro.mace.MACE` instance.
    cutoff:
        When given, the calculator maintains the graph's neighbor list
        itself through a Verlet-skin cache; when ``None`` (default) the
        graph must arrive with edges already built.
    skin:
        Verlet-skin radius of the internal cache (with ``cutoff``).
    compiled:
        Compiled-plan threading (:mod:`repro.runtime`).  The default
        ``"auto"`` gives the calculator a private
        :class:`~repro.runtime.PlanCache`: the force graph is captured
        once per edge set and replayed every MD step with positions as
        the replay input, falling back to eager capture whenever the
        Verlet rebuild changes the edge set (a new shape bucket) and to
        plain eager on any replay-guard rejection.  Pass ``None`` to
        always run eagerly, or an existing cache to share it.
    """

    def __init__(
        self,
        model,
        cutoff: Optional[float] = None,
        skin: float = DEFAULT_SKIN,
        compiled="auto",
    ) -> None:
        self.model = model
        self.neighbor_cache = (
            NeighborListCache(cutoff, skin) if cutoff is not None else None
        )
        self.plan_cache = resolve_plan_cache(compiled)

    def energy_and_forces(self, graph: MolecularGraph) -> Tuple[float, np.ndarray]:
        if self.neighbor_cache is not None:
            self.neighbor_cache.update(graph)
        elif not graph.has_edges:
            raise ValueError("graph needs a neighbor list")
        batch = collate([graph])
        energies, forces = self.model.energy_and_forces(
            batch, compiled=self.plan_cache
        )
        return float(energies[0]), forces


class ReferenceCalculator:
    """Energies and *numerical* forces from the synthetic reference
    potential (central differences; the potential is cheap and smooth).

    The finite-difference probes displace one coordinate by ``eps`` —
    far below any sensible skin radius — so a Verlet-skin cache turns
    the ``6 n`` neighbor-list rebuilds per force evaluation into one
    build plus cheap distance re-filters, without changing any energy:
    probe edges stay exactly the within-``cutoff`` set.
    """

    def __init__(self, potential: ReferencePotential | None = None, eps: float = 1e-4) -> None:
        self.potential = potential or ReferencePotential()
        self.eps = eps
        self.neighbor_cache = NeighborListCache(
            self.potential.cutoff, skin=DEFAULT_SKIN
        )

    def energy_and_forces(self, graph: MolecularGraph) -> Tuple[float, np.ndarray]:
        if not graph.has_edges:
            raise ValueError("graph needs a neighbor list")
        energy = self.potential.energy(graph)
        forces = np.zeros_like(graph.positions)
        probe = MolecularGraph(
            graph.positions.copy(),
            graph.species.copy(),
            cell=None if graph.cell is None else graph.cell.copy(),
            pbc=graph.pbc,
        )
        for i in range(graph.n_atoms):
            for d in range(3):
                for sign, slot in ((+1, 0), (-1, 1)):
                    probe.positions[...] = graph.positions
                    probe.positions[i, d] += sign * self.eps
                    self.neighbor_cache.update(probe)
                    e = self.potential.energy(probe)
                    if slot == 0:
                        e_plus = e
                    else:
                        e_minus = e
                forces[i, d] = -(e_plus - e_minus) / (2.0 * self.eps)
        return energy, forces
