"""Calculators: the bridge between potentials and simulation drivers.

A calculator exposes ``energy_and_forces(graph)``; MD and geometry
optimization are written against this interface so they work with both
the trained MACE model and the synthetic reference potential (useful for
validating the drivers independently of the model).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..data.labels import ReferencePotential
from ..graphs.batch import collate
from ..graphs.molecular_graph import MolecularGraph
from ..mace.model import MACE

__all__ = ["MACECalculator", "ReferenceCalculator"]


class MACECalculator:
    """Energies and forces from a (trained) MACE model.

    The model's autograd graph supplies exact forces ``-dE/dr``.
    """

    def __init__(self, model: MACE) -> None:
        self.model = model

    def energy_and_forces(self, graph: MolecularGraph) -> Tuple[float, np.ndarray]:
        if not graph.has_edges:
            raise ValueError("graph needs a neighbor list")
        batch = collate([graph])
        energy = float(self.model.predict_energy(batch)[0])
        forces = self.model.forces(batch)
        return energy, forces


class ReferenceCalculator:
    """Energies and *numerical* forces from the synthetic reference
    potential (central differences; the potential is cheap and smooth)."""

    def __init__(self, potential: ReferencePotential | None = None, eps: float = 1e-4) -> None:
        self.potential = potential or ReferencePotential()
        self.eps = eps

    def energy_and_forces(self, graph: MolecularGraph) -> Tuple[float, np.ndarray]:
        from ..graphs.neighborlist import build_neighbor_list

        if not graph.has_edges:
            raise ValueError("graph needs a neighbor list")
        energy = self.potential.energy(graph)
        forces = np.zeros_like(graph.positions)
        probe = MolecularGraph(
            graph.positions.copy(),
            graph.species.copy(),
            cell=None if graph.cell is None else graph.cell.copy(),
            pbc=graph.pbc,
        )
        for i in range(graph.n_atoms):
            for d in range(3):
                for sign, slot in ((+1, 0), (-1, 1)):
                    probe.positions[...] = graph.positions
                    probe.positions[i, d] += sign * self.eps
                    build_neighbor_list(probe, cutoff=self.potential.cutoff)
                    e = self.potential.energy(probe)
                    if slot == 0:
                        e_plus = e
                    else:
                        e_minus = e
                forces[i, d] = -(e_plus - e_minus) / (2.0 * self.eps)
        return energy, forces
