"""Calculators: the bridge between potentials and simulation drivers.

A calculator exposes ``energy_and_forces(graph)``; MD and geometry
optimization are written against this interface so they work with both
the trained MACE model and the synthetic reference potential (useful for
validating the drivers independently of the model).

Both calculators can own a :class:`repro.graphs.NeighborListCache`
(Verlet skin): pass a ``cutoff`` and the calculator keeps the graph's
edges exact at every evaluation while rebuilding the underlying cell
list only when an atom has moved more than ``skin / 2`` since the last
build.  Without a ``cutoff`` the caller manages neighbor lists, as
before.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..data.labels import ReferencePotential
from ..graphs.batch import collate
from ..graphs.molecular_graph import MolecularGraph
from ..graphs.pipeline import DEFAULT_SKIN, NeighborListCache
from ..runtime import resolve_plan_cache

# Padded-MD edge capacities are rounded up to a multiple of this, so the
# shape buckets a trajectory visits stay few and recurring.
EDGE_BUCKET = 32

__all__ = ["MACECalculator", "ReferenceCalculator"]


class MACECalculator:
    """Energies and forces from a (trained) MACE model.

    The model's autograd graph supplies exact forces ``-dE/dr``; energy
    and forces come from a *single* forward+backward pass
    (:meth:`repro.mace.MACE.energy_and_forces`).

    Parameters
    ----------
    model:
        A :class:`repro.mace.MACE` instance.
    cutoff:
        When given, the calculator maintains the graph's neighbor list
        itself through a Verlet-skin cache; when ``None`` (default) the
        graph must arrive with edges already built.
    skin:
        Verlet-skin radius of the internal cache (with ``cutoff``).
    compiled:
        Compiled-plan threading (:mod:`repro.runtime`).  The default
        ``"auto"`` gives the calculator a private
        :class:`~repro.runtime.PlanCache`: the force graph is captured
        once per edge set and replayed every MD step with positions as
        the replay input, falling back to eager capture whenever the
        Verlet rebuild changes the edge set (a new shape bucket) and to
        plain eager on any replay-guard rejection.  Pass ``None`` to
        always run eagerly, or an existing cache to share it.
    pad_edges:
        Pad MD batches to capacity buckets so plan hit rates survive
        neighbor-list refilters.  The batch carries the Verlet
        *candidate* edge set (fixed between rebuilds) padded with ghost
        self-edges up to a grow-only multiple of ``EDGE_BUCKET``; the
        model masks out-of-cutoff edges so results match the exact edge
        set, while the plan-cache key stays constant between rebuilds
        instead of changing whenever an edge crosses the cutoff.  The
        default ``"auto"`` enables this exactly when the calculator owns
        both a neighbor list and a plan cache (the regime where it
        pays); ``True`` additionally requires ``cutoff``.

    Attributes
    ----------
    edge_capacity:
        Current (grow-only) padded edge capacity; 0 until the first
        padded evaluation.
    """

    def __init__(
        self,
        model,
        cutoff: Optional[float] = None,
        skin: float = DEFAULT_SKIN,
        compiled="auto",
        pad_edges="auto",
    ) -> None:
        self.model = model
        self.neighbor_cache = (
            NeighborListCache(cutoff, skin) if cutoff is not None else None
        )
        self.plan_cache = resolve_plan_cache(compiled)
        if pad_edges == "auto":
            pad_edges = (
                self.neighbor_cache is not None and self.plan_cache is not None
            )
        elif pad_edges and self.neighbor_cache is None:
            raise ValueError(
                "pad_edges needs the calculator-owned neighbor list; pass cutoff"
            )
        self.pad_edges = bool(pad_edges)
        self.edge_capacity = 0
        self._pad_build = -1  # neighbor_cache.rebuilds the padding was built at
        self._pad_batch = None  # collated padded batch, reused between rebuilds

    def energy_and_forces(self, graph: MolecularGraph) -> Tuple[float, np.ndarray]:
        if self.neighbor_cache is not None:
            self.neighbor_cache.update(graph)
        elif not graph.has_edges:
            raise ValueError("graph needs a neighbor list")
        if self.pad_edges:
            batch = self._padded_batch(graph)
        else:
            batch = collate([graph])
        energies, forces = self.model.energy_and_forces(
            batch, compiled=self.plan_cache
        )
        return float(energies[0]), forces

    def _padded_batch(self, graph: MolecularGraph):
        """Collate ``graph`` on its padded candidate edge set.

        The padded arrays are rebuilt only when the Verlet cache
        rebuilds its candidate list; between rebuilds every step sees
        bit-identical edge arrays, so force-plan signatures repeat and
        replays hit.  Ghost edges are self-edges on atom 0 displaced by
        ``2 * cutoff`` — beyond the cutoff, so the model's within-cutoff
        mask zeroes their contribution exactly.
        """
        cache = self.neighbor_cache
        if self._pad_build != cache.rebuilds:
            cand_index, cand_shift = cache.candidate_edges()
            n_cand = cand_index.shape[1]
            want = -(-max(n_cand, 1) // EDGE_BUCKET) * EDGE_BUCKET
            self.edge_capacity = max(self.edge_capacity, want)
            pad = self.edge_capacity - n_cand
            ghost_index = np.zeros((2, pad), dtype=cand_index.dtype)
            ghost_shift = np.zeros((pad, 3))
            ghost_shift[:, 0] = 2.0 * cache.cutoff
            padded = MolecularGraph(
                graph.positions,
                graph.species,
                cell=graph.cell,
                pbc=graph.pbc,
                edge_index=np.concatenate([cand_index, ghost_index], axis=1),
                edge_shift=np.concatenate([cand_shift, ghost_shift], axis=0),
                system=graph.system,
            )
            # The collated batch is cached between rebuilds — not just
            # the padded arrays — so the *objects* the model sees stay
            # stable step to step.  The edge arrays are bound as replay
            # inputs; keeping them the same objects preserves the
            # per-index scatter memoization and keeps signature hashing
            # off the hot path's edge content.
            self._pad_batch = collate([padded])
            self._pad_batch.masked_cutoff = cache.cutoff
            self._pad_build = cache.rebuilds
        batch = self._pad_batch
        batch.positions = graph.positions.copy()
        return batch


class ReferenceCalculator:
    """Energies and *numerical* forces from the synthetic reference
    potential (central differences; the potential is cheap and smooth).

    The finite-difference probes displace one coordinate by ``eps`` —
    far below any sensible skin radius — so a Verlet-skin cache turns
    the ``6 n`` neighbor-list rebuilds per force evaluation into one
    build plus cheap distance re-filters, without changing any energy:
    probe edges stay exactly the within-``cutoff`` set.
    """

    def __init__(self, potential: ReferencePotential | None = None, eps: float = 1e-4) -> None:
        self.potential = potential or ReferencePotential()
        self.eps = eps
        self.neighbor_cache = NeighborListCache(
            self.potential.cutoff, skin=DEFAULT_SKIN
        )

    def energy_and_forces(self, graph: MolecularGraph) -> Tuple[float, np.ndarray]:
        if not graph.has_edges:
            raise ValueError("graph needs a neighbor list")
        energy = self.potential.energy(graph)
        forces = np.zeros_like(graph.positions)
        probe = MolecularGraph(
            graph.positions.copy(),
            graph.species.copy(),
            cell=None if graph.cell is None else graph.cell.copy(),
            pbc=graph.pbc,
        )
        for i in range(graph.n_atoms):
            for d in range(3):
                for sign, slot in ((+1, 0), (-1, 1)):
                    probe.positions[...] = graph.positions
                    probe.positions[i, d] += sign * self.eps
                    self.neighbor_cache.update(probe)
                    e = self.potential.energy(probe)
                    if slot == 0:
                        e_plus = e
                    else:
                        e_minus = e
                forces[i, d] = -(e_plus - e_minus) / (2.0 * self.eps)
        return energy, forces
