"""Molecular-dynamics integrators driving a MACE potential.

The paper's motivation (§1) is atomistic simulation: MLIPs exist to run
molecular dynamics orders of magnitude faster than DFT.  This module
closes that loop for the reproduction — a velocity-Verlet integrator (NVE)
with an optional Langevin thermostat (NVT) that consumes any calculator
exposing ``energy_and_forces(graph)``.

Units: positions in Angstrom, energies in eV, masses in atomic mass units,
time in femtoseconds.  The conversion constant folds eV/(amu*A) into
A/fs^2.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

import numpy as np

from ..graphs.molecular_graph import MolecularGraph
from ..graphs.neighborlist import DEFAULT_CUTOFF, build_neighbor_list
from ..graphs.pipeline import NeighborListCache

__all__ = ["ATOMIC_MASSES", "MDState", "Trajectory", "VelocityVerlet", "temperature"]

# eV / (amu * Angstrom) expressed in Angstrom / fs^2.
_ACC_UNIT = 9.648533212e-3
# Boltzmann constant in eV / K.
_KB = 8.617333262e-5

ATOMIC_MASSES = {
    1: 1.008, 8: 15.999, 13: 26.982, 14: 28.085, 16: 32.06, 17: 35.45,
    22: 47.867, 23: 50.942, 24: 51.996, 25: 54.938, 26: 55.845, 27: 58.933,
    28: 58.693, 29: 63.546, 30: 65.38, 34: 78.971, 42: 95.95, 52: 127.60,
    74: 183.84,
}


def _masses(species: np.ndarray) -> np.ndarray:
    try:
        return np.array([ATOMIC_MASSES[int(z)] for z in species])
    except KeyError as exc:
        raise KeyError(f"no mass tabulated for species {exc}") from exc


def temperature(velocities: np.ndarray, masses: np.ndarray) -> float:
    """Instantaneous kinetic temperature (K) from velocities in A/fs."""
    # Kinetic energy in eV: 1/2 m v^2 / _ACC_UNIT (amu*(A/fs)^2 -> eV).
    ke = 0.5 * float(np.sum(masses[:, None] * velocities**2)) / _ACC_UNIT
    dof = max(3 * velocities.shape[0] - 3, 1)
    return 2.0 * ke / (dof * _KB)


@dataclass
class MDState:
    """Dynamical state of a system during MD."""

    positions: np.ndarray
    velocities: np.ndarray
    forces: np.ndarray
    potential_energy: float
    step: int = 0

    def kinetic_energy(self, masses: np.ndarray) -> float:
        """Kinetic energy in eV."""
        return 0.5 * float(np.sum(masses[:, None] * self.velocities**2)) / _ACC_UNIT


@dataclass
class Trajectory:
    """Recorded observables of an MD run."""

    times_fs: List[float] = field(default_factory=list)
    potential: List[float] = field(default_factory=list)
    kinetic: List[float] = field(default_factory=list)
    temperatures: List[float] = field(default_factory=list)

    @property
    def total_energy(self) -> np.ndarray:
        """Total energy series (the NVE conservation check)."""
        return np.asarray(self.potential) + np.asarray(self.kinetic)

    def energy_drift(self) -> float:
        """Max |E(t) - E(0)| over the run (eV)."""
        e = self.total_energy
        return float(np.abs(e - e[0]).max()) if e.size else 0.0


class VelocityVerlet:
    """Velocity-Verlet MD with optional Langevin thermostat.

    Parameters
    ----------
    calculator:
        Object with ``energy_and_forces(graph) -> (float, (n,3) array)``;
        :class:`repro.md.calculator.MACECalculator` wraps a MACE model.
    graph:
        Initial configuration (neighbor list rebuilt internally).
    timestep_fs:
        Integration step in femtoseconds.
    friction:
        Langevin friction (1/fs).  0 disables the thermostat (NVE).
    target_temperature:
        Thermostat set-point in Kelvin (requires ``friction > 0``).
    cutoff:
        Neighbor-list cutoff; the list is rebuilt every ``rebuild_every``
        steps (graph edges are dynamic, Table 1).
    skin:
        Verlet-skin radius.  When positive, the neighbor list is kept
        through a :class:`repro.graphs.NeighborListCache` *every* step —
        exact edges always, full grid rebuilds only when an atom has
        drifted more than ``skin / 2`` — and ``rebuild_every`` is
        ignored.  ``"auto"`` additionally lets the cache tune the skin
        from the observed per-step displacement (hot trajectories get a
        larger skin).  0 (default) keeps the legacy fixed-interval
        rebuild.
    seed:
        RNG seed for initial velocities and the thermostat noise.
    """

    def __init__(
        self,
        calculator,
        graph: MolecularGraph,
        timestep_fs: float = 0.5,
        friction: float = 0.0,
        target_temperature: float = 300.0,
        cutoff: float = DEFAULT_CUTOFF,
        rebuild_every: int = 5,
        skin=0.0,
        seed: int = 0,
    ) -> None:
        if timestep_fs <= 0:
            raise ValueError("timestep must be positive")
        if friction < 0:
            raise ValueError("friction must be non-negative")
        self.calculator = calculator
        self.graph = graph
        self.dt = timestep_fs
        self.friction = friction
        self.target_temperature = target_temperature
        self.cutoff = cutoff
        self.rebuild_every = max(int(rebuild_every), 1)
        if skin != "auto":
            if not isinstance(skin, (int, float)):
                raise ValueError("skin must be a number or 'auto'")
            if skin < 0:
                raise ValueError("skin must be non-negative")
        self.neighbor_cache = (
            NeighborListCache(cutoff, skin)
            if skin == "auto" or skin > 0
            else None
        )
        self.rng = np.random.default_rng(seed)
        self.masses = _masses(graph.species)
        self._refresh_edges()
        e, f = calculator.energy_and_forces(self.graph)
        self.state = MDState(
            positions=graph.positions.copy(),
            velocities=np.zeros_like(graph.positions),
            forces=f,
            potential_energy=e,
        )

    # -- setup ---------------------------------------------------------------------

    def initialize_velocities(self, temperature_K: float) -> None:
        """Maxwell-Boltzmann velocities at the given temperature, with the
        center-of-mass motion removed."""
        n = self.masses.size
        sigma = np.sqrt(_KB * temperature_K * _ACC_UNIT / self.masses)
        v = self.rng.standard_normal((n, 3)) * sigma[:, None]
        v -= (self.masses[:, None] * v).sum(axis=0) / self.masses.sum()
        self.state.velocities = v

    def _refresh_edges(self) -> None:
        if self.neighbor_cache is not None:
            self.neighbor_cache.update(self.graph)
        else:
            build_neighbor_list(self.graph, cutoff=self.cutoff)

    @property
    def neighbor_rebuilds(self) -> int:
        """Full neighbor-list rebuilds so far (skin mode only; 0 otherwise)."""
        return 0 if self.neighbor_cache is None else self.neighbor_cache.rebuilds

    # -- stepping -------------------------------------------------------------------

    def step(self) -> MDState:
        """Advance one velocity-Verlet step (with Langevin forces if set)."""
        s = self.state
        m = self.masses[:, None]
        acc = s.forces / m * _ACC_UNIT
        # Half kick + drift.
        v_half = s.velocities + 0.5 * self.dt * acc
        s.positions += self.dt * v_half
        self.graph.positions[...] = s.positions
        if self.neighbor_cache is not None:
            # Exact edges every step; the cache decides when to rebuild.
            self._refresh_edges()
        elif (s.step + 1) % self.rebuild_every == 0:
            self._refresh_edges()
        e, f = self.calculator.energy_and_forces(self.graph)
        acc_new = f / m * _ACC_UNIT
        v_new = v_half + 0.5 * self.dt * acc_new
        if self.friction > 0.0:
            # Langevin (BAOAB-ish dissipation applied after the kick).
            gamma = self.friction
            c1 = math.exp(-gamma * self.dt)
            sigma = np.sqrt(
                (1.0 - c1 * c1) * _KB * self.target_temperature * _ACC_UNIT
                / self.masses
            )
            v_new = c1 * v_new + sigma[:, None] * self.rng.standard_normal(
                v_new.shape
            )
        s.velocities = v_new
        s.forces = f
        s.potential_energy = e
        s.step += 1
        return s

    def run(self, n_steps: int, record_every: int = 1) -> Trajectory:
        """Integrate ``n_steps`` and record a :class:`Trajectory`."""
        traj = Trajectory()
        for i in range(n_steps):
            self.step()
            if i % record_every == 0:
                traj.times_fs.append(self.state.step * self.dt)
                traj.potential.append(self.state.potential_energy)
                traj.kinetic.append(self.state.kinetic_energy(self.masses))
                traj.temperatures.append(
                    temperature(self.state.velocities, self.masses)
                )
        return traj
