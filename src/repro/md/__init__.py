"""Atomistic simulation drivers: MD and geometry optimization on MACE."""

from .calculator import MACECalculator, ReferenceCalculator
from .integrators import (
    ATOMIC_MASSES,
    MDState,
    Trajectory,
    VelocityVerlet,
    temperature,
)
from .optimize import FIREResult, fire_relax

__all__ = [
    "MACECalculator",
    "ReferenceCalculator",
    "VelocityVerlet",
    "MDState",
    "Trajectory",
    "temperature",
    "ATOMIC_MASSES",
    "fire_relax",
    "FIREResult",
]
