"""Shared-memory slabs: zero-copy array traffic between driver and workers.

One :class:`ShmSlab` is created by the driver per executor and attached
(by name) from every worker process.  The driver owns the allocator — a
64-byte-aligned first-fit free list with coalescing on free — and hands
out :class:`ArrayHandle` descriptors; a handle is a plain
``(offset, shape, dtype)`` triple, so it pickles into a task message in a
few dozen bytes while the array payload never touches a queue.  Workers
only ever *view* handles (``attach`` + ``view``); all allocation policy
stays in one process, which keeps the allocator state out of shared
memory and makes worker death harmless to the slab.

Ownership protocol (see also ``README.md`` in this package):

- the driver allocates a segment, writes inputs (or leaves it for the
  worker to fill), and frees it after consuming the result;
- a worker may write only into segments named by the task it is running,
  between that task's receipt and its result message;
- the creating process ``unlink()``s the slab at executor shutdown.

:class:`LocalSlab` is the in-process stand-in backing the serial and
thread executors: same allocator, same handle type, one private
``np.uint8`` arena instead of a shared segment — so task code is
identical across all three backends.

When a slab cannot fit an array, :meth:`place` raises :class:`SlabFull`;
executors catch it and fall back to sending the array inline through the
task queue (slower, never wrong).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

__all__ = ["ArrayHandle", "LocalSlab", "ShmSlab", "SlabFull"]

_ALIGN = 64  # cache-line granularity, matching the plan arena


class SlabFull(Exception):
    """No free extent large enough; caller should fall back to inline."""


@dataclass(frozen=True)
class ArrayHandle:
    """Picklable descriptor of an array living inside a slab."""

    offset: int
    shape: Tuple[int, ...]
    dtype: str

    @property
    def nbytes(self) -> int:
        return int(np.prod(self.shape, dtype=np.int64)) * np.dtype(self.dtype).itemsize


class _Allocator:
    """First-fit free list over ``[0, nbytes)`` with coalescing frees."""

    def __init__(self, nbytes: int) -> None:
        if nbytes <= 0:
            raise ValueError("slab size must be positive")
        self.nbytes = int(nbytes)
        self._free: List[Tuple[int, int]] = [(0, self.nbytes)]  # (offset, size)
        self._live: Dict[int, int] = {}  # offset -> rounded size

    def _alloc(self, nbytes: int) -> int:
        size = max((int(nbytes) + _ALIGN - 1) & ~(_ALIGN - 1), _ALIGN)
        for i, (off, extent) in enumerate(self._free):
            if extent >= size:
                if extent == size:
                    del self._free[i]
                else:
                    self._free[i] = (off + size, extent - size)
                self._live[off] = size
                return off
        raise SlabFull(f"no free extent of {size} bytes (slab {self.nbytes})")

    def _release(self, offset: int) -> None:
        size = self._live.pop(offset, None)
        if size is None:
            raise ValueError(f"offset {offset} is not a live allocation")
        self._free.append((offset, size))
        # Coalesce: sort by offset and merge adjacent extents.
        self._free.sort()
        merged: List[Tuple[int, int]] = []
        for off, extent in self._free:
            if merged and merged[-1][0] + merged[-1][1] == off:
                merged[-1] = (merged[-1][0], merged[-1][1] + extent)
            else:
                merged.append((off, extent))
        self._free = merged

    @property
    def live_bytes(self) -> int:
        return sum(self._live.values())


class _SlabBase(_Allocator):
    """Allocator + array interface over a raw byte buffer."""

    _buf: np.ndarray  # (nbytes,) uint8 view of the backing storage

    def alloc(self, shape, dtype) -> ArrayHandle:
        """Reserve space for an array; contents are uninitialized."""
        handle = ArrayHandle(0, tuple(int(s) for s in shape), np.dtype(dtype).str)
        return ArrayHandle(self._alloc(handle.nbytes), handle.shape, handle.dtype)

    def place(self, array: np.ndarray) -> ArrayHandle:
        """Copy ``array`` into the slab; returns its handle."""
        array = np.ascontiguousarray(array)
        handle = self.alloc(array.shape, array.dtype)
        self.view(handle)[...] = array
        return handle

    def view(self, handle: ArrayHandle) -> np.ndarray:
        """The live array a handle names (zero-copy view into the slab)."""
        end = handle.offset + handle.nbytes
        if end > self.nbytes:
            raise ValueError(f"handle {handle} exceeds slab of {self.nbytes} bytes")
        return (
            self._buf[handle.offset : end]
            .view(np.dtype(handle.dtype))
            .reshape(handle.shape)
        )

    def take(self, handle: ArrayHandle) -> np.ndarray:
        """Copy a handle's contents out and free the segment."""
        data = self.view(handle).copy()
        self.free(handle)
        return data

    def free(self, handle: ArrayHandle) -> None:
        self._release(handle.offset)


class LocalSlab(_SlabBase):
    """In-process slab for the serial and thread executors."""

    def __init__(self, nbytes: int) -> None:
        super().__init__(nbytes)
        self._buf = np.empty(self.nbytes, dtype=np.uint8)

    def close(self) -> None:  # API parity with ShmSlab
        pass

    def unlink(self) -> None:
        pass


class ShmSlab(_SlabBase):
    """Slab over one ``multiprocessing.shared_memory`` segment.

    The creating process (``ShmSlab(nbytes)``) owns the allocator and the
    segment's lifetime; workers call :meth:`attach` with the segment
    ``name`` and may only :meth:`view` handles given to them by tasks.
    """

    def __init__(self, nbytes: int, name: Optional[str] = None, _attach: bool = False) -> None:
        from multiprocessing import shared_memory

        super().__init__(nbytes)
        if _attach:
            try:
                # track=False (3.13+) keeps the attaching process's
                # resource tracker away from a segment it doesn't own —
                # otherwise a dying worker can tear down the driver's
                # slab.  On 3.11/3.12 fork-started workers share the
                # driver's tracker process, which is equally safe.
                self._shm = shared_memory.SharedMemory(name=name, track=False)
            except TypeError:
                self._shm = shared_memory.SharedMemory(name=name)
            self.owner = False
        else:
            self._shm = shared_memory.SharedMemory(create=True, size=self.nbytes, name=name)
            self.owner = True
        self._buf = np.frombuffer(self._shm.buf, dtype=np.uint8, count=self.nbytes)

    @classmethod
    def attach(cls, name: str, nbytes: int) -> "ShmSlab":
        """Worker-side view of an existing slab (no allocation rights)."""
        return cls(nbytes, name=name, _attach=True)

    @property
    def name(self) -> str:
        return self._shm.name

    def alloc(self, shape, dtype) -> ArrayHandle:
        if not self.owner:
            raise RuntimeError("only the creating process may allocate from a slab")
        return super().alloc(shape, dtype)

    def free(self, handle: ArrayHandle) -> None:
        if not self.owner:
            raise RuntimeError("only the creating process may free slab segments")
        super().free(handle)

    def close(self) -> None:
        # Drop the buffer view first: SharedMemory.close() refuses while
        # exported views are alive.
        self._buf = np.empty(0, dtype=np.uint8)
        try:
            self._shm.close()
        except BufferError:
            # A consumer still holds a view; the mapping is reclaimed at
            # process exit instead.
            pass

    def unlink(self) -> None:
        if self.owner:
            self._shm.unlink()
