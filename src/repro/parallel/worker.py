"""Worker-side protocol: installed state and the tasks that run on it.

Everything a worker holds lives in one :class:`WorkerContext`; nothing
in this module keeps module-level state, so a respawned worker is
reconstructed exactly by replaying the executor's install log (see
:mod:`repro.parallel.executor`).

Two message kinds cross the task queue:

- **install messages** (:class:`InstallModel`, :class:`InstallPlan`,
  :class:`SetupRank`) mutate the context and are idempotent — the
  executor logs them per worker and replays the log into a respawned
  replacement after a worker death;
- **tasks** (:class:`ForwardTask`, :class:`GradStep`) compute and return
  a small metadata dict; array payloads travel through the executor's
  shared-memory slab (:mod:`repro.parallel.shm`) whenever they fit, and
  inline through the queue otherwise.

Timestamps use ``time.monotonic()``: ``CLOCK_MONOTONIC`` is system-wide
on Linux, so worker-side start/finish stamps are directly comparable to
the driver's clock.
"""

from __future__ import annotations

import pickle
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

import numpy as np

from .shm import ArrayHandle

__all__ = [
    "ForwardTask",
    "GradStep",
    "InstallModel",
    "InstallPlan",
    "SetupRank",
    "WorkerContext",
]


def _clone(obj):
    """Process-equivalent copy: the same round trip the queue would do.

    Thread workers install through this too, so every backend gives each
    worker private model/plan instances — replaying a shared plan from
    two threads would race on its instruction state and arena buffers.
    """
    return pickle.loads(pickle.dumps(obj))


@dataclass
class RankState:
    """One DDP rank living on a worker: a trainer over a private model."""

    rank: int
    trainer: Any
    params: list  # the flatten/unflatten order, = list(model.parameters())


class WorkerContext:
    """All state a worker accumulates from install messages."""

    def __init__(self, worker_id: int, slab=None) -> None:
        self.worker_id = worker_id
        self.slab = slab  # attached ShmSlab (process), LocalSlab, or None
        self.models: Dict[int, Any] = {}  # version -> MACE
        self.plan_caches: Dict[int, Any] = {}  # version -> PlanCache
        self.plans: Dict[Tuple[int, bytes], Any] = {}  # (version, key) -> plan
        self.ranks: Dict[int, RankState] = {}

    def _array(self, ref):
        """Resolve a task operand: slab handle or inline ndarray."""
        if isinstance(ref, ArrayHandle):
            return self.slab.view(ref)
        return ref


# -- install messages ---------------------------------------------------------


@dataclass
class InstallModel:
    """Publish one model version to a worker."""

    version: int
    model: Any

    def install(self, ctx: WorkerContext) -> None:
        from ..runtime import PlanCache

        ctx.models[self.version] = _clone(self.model)
        # Worker-side captures happen off the driver's verified path, and
        # conftest-style verify hooks don't exist here: skip verification
        # (the driver broadcasts verified plans for the hot compositions;
        # this cache only serves the self-capture fallback).
        ctx.plan_caches[self.version] = PlanCache(verify=False)

    def replaces(self, other) -> bool:
        return isinstance(other, InstallModel) and other.version == self.version


@dataclass
class InstallPlan:
    """Publish one compiled plan under a content key.

    The plan arrives pickled (scratch stripped — see
    ``CompiledPlan.__getstate__``); its buffers are rebuilt lazily on the
    worker's first replay.
    """

    version: int
    key: bytes
    plan: Any

    def install(self, ctx: WorkerContext) -> None:
        ctx.plans[(self.version, self.key)] = _clone(self.plan)

    def replaces(self, other) -> bool:
        return (
            isinstance(other, InstallPlan)
            and (other.version, other.key) == (self.version, self.key)
        )


@dataclass
class SetupRank:
    """Create one DDP rank's state: a trainer over a private model clone.

    The shipped ``graphs`` are the full training list (batch indices are
    global), and the driver's fitted scaler is copied in verbatim so the
    worker's loss matches the driver's serial trainer bit for bit.
    ``compiled=False`` forces eager loss steps — the configuration under
    which per-rank gradients are *bitwise* equal to the serial
    ``Trainer.ddp_step`` (compiled steps agree to ~1e-15 reassociation;
    see ``tests/test_parallel.py``).
    """

    rank: int
    model_version: int
    graphs: Any
    scaler_mean: float
    scaler_std: float
    loss_weighting: str = "per_atom"
    compiled: bool = True

    def install(self, ctx: WorkerContext) -> None:
        from ..training.trainer import Trainer

        model = _clone(ctx.models[self.model_version])
        trainer = Trainer(
            model,
            _clone(self.graphs),
            loss_weighting=self.loss_weighting,
            plan_cache="auto" if self.compiled else None,
        )
        trainer.scaler.mean_per_atom = self.scaler_mean
        trainer.scaler.std_per_atom = self.scaler_std
        ctx.ranks[self.rank] = RankState(
            rank=self.rank, trainer=trainer, params=list(model.parameters())
        )

    def replaces(self, other) -> bool:
        return isinstance(other, SetupRank) and other.rank == self.rank


# -- tasks --------------------------------------------------------------------


@dataclass
class ForwardTask:
    """One micro-batch energy evaluation.

    Fast path: ``plan_key`` names an installed forward plan whose
    constants *are* the batch (serving pools are static, so a micro-batch
    composition pins its content); the worker replays it with zero
    inputs.  Fallback: ``batch`` carries the collated arrays (handles or
    inline) and the worker runs ``predict_energy`` against its own plan
    cache — used when a plan broadcast was skipped or lost.

    ``result`` optionally names a driver-allocated slab segment of shape
    ``(n_graphs,)``; the energies are written there and the returned
    metadata carries only timestamps.  Without it the energies come back
    inline.
    """

    task_id: Any
    version: int
    plan_key: Optional[bytes] = None
    batch: Optional[Dict[str, Any]] = None
    n_graphs: int = 0
    masked_cutoff: Optional[float] = None
    result: Optional[ArrayHandle] = None

    def run(self, ctx: WorkerContext) -> Dict[str, Any]:
        start = time.monotonic()
        plan = None
        if self.plan_key is not None:
            plan = ctx.plans.get((self.version, self.plan_key))
        if plan is not None:
            (energies,), _ = plan.replay(compute_grads=False)
        else:
            energies = self._fallback(ctx)
        out: Dict[str, Any] = {
            "task_id": self.task_id,
            "worker": ctx.worker_id,
            "start": start,
            "finish": time.monotonic(),
            "replayed": plan is not None,
        }
        if self.result is not None:
            ctx.slab.view(self.result)[...] = energies
        else:
            out["energies"] = np.asarray(energies, dtype=np.float64)
        return out

    def _fallback(self, ctx: WorkerContext) -> np.ndarray:
        if self.batch is None:
            raise RuntimeError(
                f"task {self.task_id}: plan {self.plan_key!r} not installed "
                "and no batch payload to fall back to"
            )
        from ..graphs.batch import GraphBatch

        arrays = {name: np.asarray(ctx._array(ref)) for name, ref in self.batch.items()}
        batch = GraphBatch(
            positions=arrays["positions"],
            species=arrays["species"],
            graph_index=arrays["graph_index"],
            edge_index=arrays["edge_index"],
            edge_shift=arrays["edge_shift"],
            energies=arrays["energies"],
            n_graphs=self.n_graphs,
        )
        if self.masked_cutoff is not None:
            batch.masked_cutoff = self.masked_cutoff
        model = ctx.models[self.version]
        return model.predict_energy(batch, compiled=ctx.plan_caches[self.version])


@dataclass
class GradStep:
    """One rank's forward/backward for one DDP step.

    Parameters stream in through ``params`` (the shared flattened
    parameter segment, written by the driver before each step); the
    flattened gradient streams out through ``grads`` (this rank's private
    segment).  Without a slab both fall back to inline arrays in the
    task/result messages.
    """

    task_id: Any
    rank: int
    batch_indices: Tuple[int, ...]
    capacity: int = 0
    params: Any = None  # ArrayHandle | ndarray (inline)
    grads: Optional[ArrayHandle] = None

    def run(self, ctx: WorkerContext) -> Dict[str, Any]:
        start = time.monotonic()
        state = ctx.ranks[self.rank]
        trainer = state.trainer
        flat = np.asarray(ctx._array(self.params))
        offset = 0
        for p in state.params:
            n = p.data.size
            p.data[...] = flat[offset : offset + n].reshape(p.data.shape)
            offset += n
        trainer.model.zero_grad()
        batch = trainer._collate(list(self.batch_indices), self.capacity)
        loss = trainer._loss_step(batch)
        grad_flat = np.concatenate(
            [
                (p.grad if p.grad is not None else np.zeros(p.data.shape)).ravel()
                for p in state.params
            ]
        )
        out: Dict[str, Any] = {
            "task_id": self.task_id,
            "worker": ctx.worker_id,
            "rank": self.rank,
            "loss": float(loss),
            "start": start,
            "finish": time.monotonic(),
        }
        if self.grads is not None:
            ctx.slab.view(self.grads)[...] = grad_flat
        else:
            out["grad"] = grad_flat
        return out


def flatten_params(params) -> np.ndarray:
    """Concatenate parameter arrays in order (the DDP wire format)."""
    return np.concatenate([np.asarray(p.data).ravel() for p in params])


def unflatten_into(flat: np.ndarray, arrays) -> None:
    """Scatter a flat vector back over ``arrays`` in order, in place."""
    offset = 0
    for a in arrays:
        n = a.size
        a[...] = flat[offset : offset + n].reshape(a.shape)
        offset += n
