"""Real multicore execution for replicas and DDP ranks.

Everything above this package *simulates* parallel hardware from a cost
model; this package supplies the real thing on the host CPU — a
worker-pool execution engine consumed by the serving engine's
wall-clock mode (:class:`repro.serving.InferenceEngine` with
``mode="wall-clock"``) and the trainer's real data-parallel mode
(:class:`~repro.parallel.ParallelDDP`, threaded through
``repro.training.distributed``).  Comparing the two is the wall-clock
validation of the cost model (``benchmarks/bench_parallel.py``,
``repro.cli validate-cost-model``).

See ``README.md`` in this package for the executor API, the
shared-memory ownership rules and the threads-versus-processes guidance.
"""

from .ddp import ParallelDDP
from .executor import (
    BaseExecutor,
    ExecutorStats,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    WorkerDied,
    available_cores,
    make_executor,
)
from .shm import ArrayHandle, LocalSlab, ShmSlab, SlabFull
from .worker import (
    ForwardTask,
    GradStep,
    InstallModel,
    InstallPlan,
    SetupRank,
    WorkerContext,
)

__all__ = [
    "ArrayHandle",
    "BaseExecutor",
    "ExecutorStats",
    "ForwardTask",
    "GradStep",
    "InstallModel",
    "InstallPlan",
    "LocalSlab",
    "ParallelDDP",
    "ProcessExecutor",
    "SerialExecutor",
    "SetupRank",
    "ShmSlab",
    "SlabFull",
    "ThreadExecutor",
    "WorkerContext",
    "WorkerDied",
    "available_cores",
    "make_executor",
]
