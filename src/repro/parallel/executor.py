"""Worker-pool executors: serial, thread and process backends, one API.

The driver talks to every backend identically:

- :meth:`~BaseExecutor.install` broadcasts an install message (model,
  plan, rank state) to the pool and logs it per worker, so a respawned
  worker can be rebuilt by replaying the log;
- :meth:`~BaseExecutor.submit` enqueues one task (optionally pinned to a
  worker — DDP pins each rank so its trainer state is reused);
- :meth:`~BaseExecutor.drain` blocks until every outstanding task has a
  result and returns ``{task_id: result}``.

Backends:

:class:`SerialExecutor`
    Runs tasks inline at submit time.  The reference backend — its
    results define correctness for the other two — and the zero-overhead
    fallback on single-core machines.

:class:`ThreadExecutor`
    One Python thread per worker.  NumPy's BLAS kernels release the GIL,
    so batched GEMM-heavy replays overlap; pure-Python stretches
    serialize.  Install messages are cloned per worker (the same pickle
    round trip the process queue does), so plans and models are never
    shared between threads.

:class:`ProcessExecutor`
    Real multicore: forked worker processes, per-worker task queues,
    per-worker result *pipes*, array traffic through a
    :class:`ShmSlab`.  Worker death (crash, OOM-kill, ``SIGKILL``) is
    detected while draining; the dead worker is respawned from its
    install log, its in-flight tasks are resubmitted, and the incident
    is counted in :attr:`~BaseExecutor.stats` — the trace completes
    either way.  Results deliberately travel over one pipe per worker
    (driver's write end closed) rather than a shared queue: a worker
    SIGKILLed mid-``put`` on a shared queue leaves a half-written
    message that blocks every later ``get`` forever, while a dead
    worker's private pipe just raises ``EOFError`` and is abandoned.

Nothing in this module keeps module-level mutable state: every queue,
slab and context hangs off an executor or worker instance, so a fork at
any moment captures no half-shared globals (enforced by the
``parallel-module-state`` lint rule).
"""

from __future__ import annotations

import os
import pickle
import queue
import threading
import time
import traceback
from multiprocessing import connection as mp_connection
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from .shm import LocalSlab, ShmSlab
from .worker import WorkerContext

__all__ = [
    "BaseExecutor",
    "ExecutorStats",
    "ProcessExecutor",
    "SerialExecutor",
    "ThreadExecutor",
    "WorkerDied",
    "make_executor",
]

DEFAULT_SLAB_BYTES = 32 << 20  # 32 MiB: thousands of micro-batch results


class WorkerDied(RuntimeError):
    """A worker died and its work could not be recovered."""


@dataclass
class ExecutorStats:
    """Robustness counters, surfaced into serving/training reports."""

    tasks_done: int = 0
    worker_deaths: int = 0
    resubmitted: int = 0
    installs: int = 0
    errors: int = 0


@dataclass
class _InstallLog:
    """Per-worker replayable history of install messages."""

    messages: List[Any] = field(default_factory=list)

    def add(self, message) -> None:
        # An install superseding an earlier one (same model version, same
        # plan key, same rank) replaces it, so the log replayed into a
        # respawned worker stays bounded by live state, not history.
        replaces = getattr(message, "replaces", None)
        if replaces is not None:
            self.messages = [m for m in self.messages if not replaces(m)]
        self.messages.append(message)


class BaseExecutor:
    """Shared bookkeeping: install logs, in-flight tracking, stats."""

    backend = "base"

    def __init__(self, n_workers: int, slab_bytes: int = DEFAULT_SLAB_BYTES) -> None:
        if n_workers <= 0:
            raise ValueError("n_workers must be positive")
        self.n_workers = int(n_workers)
        self.slab_bytes = int(slab_bytes)
        self.stats = ExecutorStats()
        self._logs = [_InstallLog() for _ in range(self.n_workers)]
        self._inflight: Dict[Any, Tuple[int, Any]] = {}  # task_id -> (worker, task)
        self._results: Dict[Any, Any] = {}
        self._closed = False

    # -- subclass hooks ----------------------------------------------------------

    def _send_install(self, worker: int, message) -> None:
        raise NotImplementedError

    def _send_task(self, worker: int, task) -> None:
        raise NotImplementedError

    def _collect(self, deadline: Optional[float]) -> None:
        """Move finished work from the backend into ``self._results``."""
        raise NotImplementedError

    # -- public API --------------------------------------------------------------

    def install(self, message, worker: Optional[int] = None) -> None:
        """Apply an install message on one worker (default: broadcast)."""
        targets = range(self.n_workers) if worker is None else [worker]
        for w in targets:
            self._logs[w].add(message)
            self._send_install(w, message)
            self.stats.installs += 1

    def submit(self, task, worker: Optional[int] = None) -> Any:
        """Enqueue ``task`` (round-robin when ``worker`` is None)."""
        if self._closed:
            raise RuntimeError("executor is shut down")
        if task.task_id in self._inflight or task.task_id in self._results:
            raise ValueError(f"duplicate task_id {task.task_id!r}")
        w = (len(self._inflight) + self.stats.tasks_done) % self.n_workers
        w = w if worker is None else int(worker) % self.n_workers
        self._inflight[task.task_id] = (w, task)
        self._send_task(w, task)
        return task.task_id

    def drain(self, timeout: Optional[float] = None) -> Dict[Any, Any]:
        """Wait for all outstanding tasks; return and clear their results."""
        deadline = None if timeout is None else time.monotonic() + timeout
        while self._inflight:
            if deadline is not None and time.monotonic() > deadline:
                raise TimeoutError(
                    f"{len(self._inflight)} tasks still outstanding after {timeout}s"
                )
            self._collect(deadline)
        done, self._results = self._results, {}
        return done

    def shutdown(self) -> None:
        self._closed = True

    def __enter__(self) -> "BaseExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()

    # -- shared helpers ----------------------------------------------------------

    def _finish(self, task_id, result) -> None:
        """Record one completed task (first result wins on duplicates)."""
        if task_id not in self._inflight:
            return  # duplicate after a resubmission race: keep the first
        del self._inflight[task_id]
        self._results[task_id] = result
        self.stats.tasks_done += 1
        if isinstance(result, dict) and "error" in result:
            self.stats.errors += 1


class SerialExecutor(BaseExecutor):
    """Inline execution; the semantics baseline for the pool backends."""

    backend = "serial"

    def __init__(self, n_workers: int = 1, slab_bytes: int = DEFAULT_SLAB_BYTES) -> None:
        super().__init__(n_workers, slab_bytes)
        self.slab = LocalSlab(self.slab_bytes)
        self._contexts = [
            WorkerContext(w, slab=self.slab) for w in range(self.n_workers)
        ]

    def _send_install(self, worker: int, message) -> None:
        message.install(self._contexts[worker])

    def _send_task(self, worker: int, task) -> None:
        try:
            result = task.run(self._contexts[worker])
        except Exception:
            result = {"task_id": task.task_id, "error": traceback.format_exc()}
        self._finish(task.task_id, result)

    def _collect(self, deadline) -> None:
        pass  # submit already completed everything


class ThreadExecutor(BaseExecutor):
    """One thread per worker; BLAS-bound replays overlap under the GIL."""

    backend = "thread"

    def __init__(self, n_workers: int, slab_bytes: int = DEFAULT_SLAB_BYTES) -> None:
        super().__init__(n_workers, slab_bytes)
        self.slab = LocalSlab(self.slab_bytes)
        self._done: "queue.Queue" = queue.Queue()
        self._queues: List["queue.Queue"] = []
        self._threads: List[threading.Thread] = []
        for w in range(self.n_workers):
            q: "queue.Queue" = queue.Queue()
            t = threading.Thread(
                target=_worker_loop,
                args=(WorkerContext(w, slab=self.slab), q, self._done),
                daemon=True,
                name=f"repro-parallel-{w}",
            )
            t.start()
            self._queues.append(q)
            self._threads.append(t)

    def _send_install(self, worker: int, message) -> None:
        # Clone through pickle — identical semantics to the process queue,
        # so no plan/model instance is ever shared between threads.
        self._queues[worker].put(("install", pickle.loads(pickle.dumps(message))))

    def _send_task(self, worker: int, task) -> None:
        self._queues[worker].put(("task", task))

    def _collect(self, deadline) -> None:
        try:
            task_id, result = self._done.get(timeout=0.2)
        except queue.Empty:
            return
        self._finish(task_id, result)

    def shutdown(self) -> None:
        if not self._closed:
            for q in self._queues:
                q.put(("stop", None))
            for t in self._threads:
                t.join(timeout=5.0)
        super().shutdown()


def _worker_loop(ctx: WorkerContext, tasks, done) -> None:
    """Thread-worker main loop (also the template for the process loop)."""
    while True:
        kind, payload = tasks.get()
        if kind == "stop":
            return
        if kind == "install":
            payload.install(ctx)
            continue
        try:
            result = payload.run(ctx)
        except Exception:
            result = {"task_id": payload.task_id, "error": traceback.format_exc()}
        done.put((payload.task_id, result))


def _process_worker_main(worker_id, slab_name, slab_bytes, tasks, done) -> None:
    """Process-worker entry point (module-level: must pickle by name).

    ``done`` is this worker's private result pipe; ``send`` blocks until
    the driver reads, which is fine — the driver drains eagerly.
    """
    slab = None if slab_name is None else ShmSlab.attach(slab_name, slab_bytes)
    ctx = WorkerContext(worker_id, slab=slab)
    while True:
        kind, payload = tasks.get()
        if kind == "stop":
            # Release the slab view before interpreter teardown, where
            # SharedMemory.__del__ would trip over the exported buffer.
            del ctx
            if slab is not None:
                slab.close()
            return
        if kind == "install":
            payload.install(ctx)
            continue
        try:
            result = payload.run(ctx)
        except Exception:
            result = {"task_id": payload.task_id, "error": traceback.format_exc()}
        done.send((worker_id, payload.task_id, result))


class ProcessExecutor(BaseExecutor):
    """Forked worker processes with shared-memory array traffic.

    Worker death is survivable: :meth:`drain` polls the result queue with
    a short timeout and probes liveness on every miss; a dead worker is
    replaced by a fresh process (new task queue — the old one may hold a
    half-written message), its install log is replayed, and its in-flight
    tasks are resubmitted.  A task the dying worker *did* finish is
    deduplicated by task id (first result wins).
    """

    backend = "process"

    def __init__(
        self,
        n_workers: int,
        slab_bytes: int = DEFAULT_SLAB_BYTES,
        start_method: str = "fork",
        poll_seconds: float = 0.05,
    ) -> None:
        import multiprocessing as mp

        super().__init__(n_workers, slab_bytes)
        self._mp = mp.get_context(start_method)
        self.slab = ShmSlab(self.slab_bytes)
        self.poll_seconds = float(poll_seconds)
        self._queues: List[Any] = []
        self._conns: List[Any] = []  # per-worker result pipes (read ends)
        self._procs: List[Any] = []
        for w in range(self.n_workers):
            q, conn, p = self._spawn(w)
            self._queues.append(q)
            self._conns.append(conn)
            self._procs.append(p)

    def _spawn(self, worker_id: int):
        q = self._mp.Queue()
        recv_conn, send_conn = self._mp.Pipe(duplex=False)
        p = self._mp.Process(
            target=_process_worker_main,
            args=(worker_id, self.slab.name, self.slab_bytes, q, send_conn),
            daemon=True,
            name=f"repro-parallel-{worker_id}",
        )
        p.start()
        # Close the driver's copy of the write end: the worker now holds
        # the only one, so its death closes the pipe and a pending recv
        # sees EOF instead of blocking forever.
        send_conn.close()
        return q, recv_conn, p

    @property
    def worker_pids(self) -> List[int]:
        """Live worker PIDs (tests kill one to exercise recovery)."""
        return [p.pid for p in self._procs]

    def _send_install(self, worker: int, message) -> None:
        self._queues[worker].put(("install", message))

    def _send_task(self, worker: int, task) -> None:
        self._queues[worker].put(("task", task))

    def _collect(self, deadline) -> None:
        ready = mp_connection.wait(self._conns, timeout=self.poll_seconds)
        got = False
        for conn in ready:
            try:
                worker_id, task_id, result = conn.recv()
            except (EOFError, OSError):
                # Writer died (possibly mid-send): the pipe is done, and
                # _reap below respawns the worker and resubmits its work.
                continue
            self._finish(task_id, result)
            got = True
        if not got:
            self._reap()

    def _reap(self) -> None:
        """Detect dead workers; respawn and resubmit their in-flight work."""
        for w, p in enumerate(self._procs):
            if p.is_alive():
                continue
            self.stats.worker_deaths += 1
            # The old queue/pipe may hold partially transferred messages
            # and unread tasks whose ids are being resubmitted: abandon
            # both.  cancel_join_thread() matters: the abandoned queue's
            # feeder thread may be blocked flushing into the dead
            # worker's full pipe, and without it the interpreter's exit
            # handler would join that feeder forever.
            self._queues[w].cancel_join_thread()
            self._queues[w].close()
            try:
                self._conns[w].close()
            except OSError:  # pragma: no cover - already torn down
                pass
            q, conn, proc = self._spawn(w)
            self._queues[w] = q
            self._conns[w] = conn
            self._procs[w] = proc
            for message in self._logs[w].messages:
                q.put(("install", message))
            orphans = [
                (task_id, task)
                for task_id, (owner, task) in self._inflight.items()
                if owner == w
            ]
            for task_id, task in orphans:
                self._inflight[task_id] = (w, task)
                q.put(("task", task))
                self.stats.resubmitted += 1

    def shutdown(self) -> None:
        if not self._closed:
            for q in self._queues:
                try:
                    q.put(("stop", None))
                except (ValueError, OSError):
                    pass
            for p in self._procs:
                p.join(timeout=5.0)
                if p.is_alive():
                    p.terminate()
                    p.join(timeout=1.0)
            for conn in self._conns:
                try:
                    conn.close()
                except OSError:
                    pass
            for q in self._queues:
                try:
                    q.cancel_join_thread()
                    q.close()
                except (ValueError, OSError):
                    pass
            self.slab.close()
            self.slab.unlink()
        super().shutdown()


def make_executor(
    backend: str,
    n_workers: int,
    slab_bytes: int = DEFAULT_SLAB_BYTES,
    **kwargs,
) -> BaseExecutor:
    """Build an executor by backend name: serial | thread | process."""
    if backend == "serial":
        return SerialExecutor(n_workers, slab_bytes)
    if backend == "thread":
        return ThreadExecutor(n_workers, slab_bytes)
    if backend == "process":
        return ProcessExecutor(n_workers, slab_bytes, **kwargs)
    raise ValueError(f"unknown executor backend {backend!r}")


def available_cores() -> int:
    """CPUs this process may schedule on (cgroup/affinity aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux fallback
        return os.cpu_count() or 1
