"""Real data-parallel training steps over a worker pool.

:class:`ParallelDDP` executes the exact computation of
:meth:`repro.training.Trainer.ddp_step` — per-rank forward/backward, a
gradient all-reduce, one optimizer step — but the per-rank work runs on
executor workers instead of sequentially in the driver.

Determinism contract: the driver reduces the per-rank flattened
gradients in **fixed rank order** with a running ``+=`` left fold, which
is bit-identical to the serial ``ddp_step``'s pairwise accumulation.
With eager rank losses (``compiled=False``) the per-rank gradients are
themselves bitwise equal to the serial trainer's (same NumPy ops, same
inputs), so the whole parallel step is bitwise-deterministic and matches
serial exactly; with compiled rank steps the results agree to summation
reassociation (~1e-15, asserted at 1e-12 in the tests).

Wire format: parameters are flattened once per step into a shared slab
segment every rank reads; each rank owns a private gradient segment it
writes.  Ranks are pinned to workers (``rank % n_workers``) so each
worker's trainer state — collate cache, compiled loss plans, scatter
memos — is reused across steps exactly like a persistent DDP rank.

Pipelined broadcast: with ``pipeline_broadcast=True`` (default) the
parameter broadcast of step *k+1* overlaps the tail of step *k* — after
the optimizer step, a background thread flattens the updated parameters
into the *standby* half of a double-buffered pair of slab segments while
the driver returns to the caller (epoch bookkeeping, loss logging,
simulation).  The next ``step()`` joins the thread and flips buffers
instead of flattening inline.  Parity is untouched: the staged bytes are
exactly the flatten the un-pipelined path would produce at step entry,
because between steps only ``optimizer.step`` mutates parameter data
(EMA updates touch shadow copies only) — guarded by the optimizer's step
counter; a mismatch (e.g. an extra serial step between parallel steps)
discards the staged buffer and re-flattens inline.
"""

from __future__ import annotations

import threading
import time
from typing import List, Optional, Sequence

import numpy as np

from .executor import BaseExecutor
from .shm import SlabFull
from .worker import GradStep, InstallModel, SetupRank, flatten_params

__all__ = ["ParallelDDP"]


class ParallelDDP:
    """Drive synchronous DDP steps of a trainer through an executor.

    Parameters
    ----------
    trainer:
        The driver-side :class:`~repro.training.Trainer`; its optimizer,
        EMA and scheduler state stay authoritative — workers only
        compute gradients.
    executor:
        Any :class:`~repro.parallel.BaseExecutor`.  The model and one
        :class:`~repro.parallel.worker.SetupRank` per rank are installed
        at construction.
    world_size:
        Number of DDP ranks.
    compiled:
        Whether worker rank trainers use compiled loss plans.  ``False``
        gives bitwise equality with the serial eager trainer; ``True``
        (default) is faster and agrees to ~1e-15.
    pipeline_broadcast:
        Stage the next step's parameter broadcast on a background thread
        during the current step's tail (see module docstring).  Requires
        slab segments; silently off on the inline fallback.  The staged
        bytes equal the inline flatten, so parity guarantees are
        unchanged.
    """

    def __init__(
        self,
        trainer,
        executor: BaseExecutor,
        world_size: int,
        compiled: bool = True,
        pipeline_broadcast: bool = True,
    ) -> None:
        if world_size <= 0:
            raise ValueError("world_size must be positive")
        self.trainer = trainer
        self.executor = executor
        self.world_size = int(world_size)
        self.params = list(trainer.model.parameters())
        if len(trainer.optimizer.params) != len(self.params):
            raise ValueError(
                "parallel DDP flattens the full parameter list; trainers "
                "with frozen subsets (freeze_representation) are not supported"
            )
        self._n_flat = int(sum(p.data.size for p in self.params))
        self._step_id = 0
        self.step_seconds: List[float] = []

        executor.install(InstallModel(version=0, model=trainer.model))
        for rank in range(self.world_size):
            executor.install(
                SetupRank(
                    rank=rank,
                    model_version=0,
                    graphs=trainer.graphs,
                    scaler_mean=trainer.scaler.mean_per_atom,
                    scaler_std=trainer.scaler.std_per_atom,
                    loss_weighting=trainer.loss_weighting,
                    compiled=compiled,
                ),
                worker=rank % executor.n_workers,
            )
        # Double-buffered parameter broadcast segments + one gradient
        # segment per rank.
        slab = executor.slab
        allocated: List = []
        try:
            self._param_segs = []
            for _ in range(2):
                seg = slab.alloc((self._n_flat,), np.float64)
                allocated.append(seg)
                self._param_segs.append(seg)
            self._grad_segs = []
            for _ in range(self.world_size):
                seg = slab.alloc((self._n_flat,), np.float64)
                allocated.append(seg)
                self._grad_segs.append(seg)
        except SlabFull:
            # Inline fallback: params ride in each task, grads in results.
            for seg in allocated:
                slab.free(seg)
            self._param_segs = None
            self._grad_segs = [None] * self.world_size
        self.pipeline_broadcast = bool(pipeline_broadcast) and (
            self._param_segs is not None
        )
        self._param_views = (
            [slab.view(seg) for seg in self._param_segs]
            if self._param_segs is not None
            else None
        )
        self._active = 0  # which param segment the *next* step broadcasts
        self._stage_thread: Optional[threading.Thread] = None
        self._staged = False
        self._stage_error: Optional[BaseException] = None
        self._staged_t = -1  # optimizer.t the staged params correspond to
        self.staged_broadcasts = 0  # steps served from a staged buffer
        self.inline_broadcasts = 0  # steps that flattened at step entry

    # -- one step ----------------------------------------------------------------

    def step(
        self, rank_batches: Sequence[Sequence[int]], capacity: int = 0
    ) -> float:
        """One synchronous DDP step; returns the mean loss across ranks.

        ``rank_batches`` is indexed by rank; empty entries sit out (the
        world for averaging is the number of participating ranks, exactly
        as in the serial ``ddp_step``).
        """
        if len(rank_batches) > self.world_size:
            raise ValueError(
                f"{len(rank_batches)} rank batches for world size {self.world_size}"
            )
        t0 = time.monotonic()
        if self._param_segs is not None:
            self._join_stage()
            if self._staged and self._staged_t == self.trainer.optimizer.t:
                # Step k's tail already flattened the updated params into
                # the standby buffer; flip instead of flattening.
                self._active = 1 - self._active
                self.staged_broadcasts += 1
            else:
                self._param_views[self._active][...] = flatten_params(self.params)
                self.inline_broadcasts += 1
            self._staged = False
            params_ref = self._param_segs[self._active]
            flat = None
        else:
            flat = flatten_params(self.params)
            params_ref = flat
            self.inline_broadcasts += 1
        active = [
            (rank, tuple(batch))
            for rank, batch in enumerate(rank_batches)
            if len(batch)
        ]
        if not active:
            raise ValueError("ddp step received no non-empty batches")
        for rank, batch in active:
            task = GradStep(
                task_id=(self._step_id, rank),
                rank=rank,
                batch_indices=batch,
                capacity=capacity,
                params=params_ref,
                grads=self._grad_segs[rank],
            )
            self.executor.submit(task, worker=rank % self.executor.n_workers)
        results = self.executor.drain()
        self._step_id += 1

        losses: List[float] = []
        total: Optional[np.ndarray] = None
        for rank, _ in active:  # fixed rank order: bitwise == serial fold
            res = results[(self._step_id - 1, rank)]
            if "error" in res:
                raise RuntimeError(f"rank {rank} failed:\n{res['error']}")
            losses.append(res["loss"])
            g = (
                self.executor.slab.view(self._grad_segs[rank])
                if self._grad_segs[rank] is not None
                else res["grad"]
            )
            if total is None:
                total = np.array(g, dtype=np.float64, copy=True)
            else:
                total += g
        world = len(active)
        offset = 0
        for p in self.params:
            n = p.data.size
            p.grad = (total[offset : offset + n] / world).reshape(p.data.shape)
            offset += n
        self.trainer.optimizer.step()
        self.trainer.ema.update()
        if self.pipeline_broadcast:
            self._start_stage()
        self.step_seconds.append(time.monotonic() - t0)
        return float(np.mean(losses))

    # -- pipelined broadcast -----------------------------------------------------

    def _start_stage(self) -> None:
        """Flatten the post-step parameters into the standby buffer, off
        the driver's critical path.  Safe because nothing mutates
        ``p.data`` until the next ``optimizer.step`` (the EMA only writes
        its shadow dict), and the next ``step()`` joins before reading."""
        standby_view = self._param_views[1 - self._active]

        def _stage() -> None:
            try:
                standby_view[...] = flatten_params(self.params)
            except BaseException as exc:  # re-flatten inline at next step
                self._stage_error = exc

        self._stage_error = None
        self._staged_t = self.trainer.optimizer.t
        self._stage_thread = threading.Thread(
            target=_stage, name="ddp-broadcast-stage", daemon=True
        )
        self._stage_thread.start()
        self._staged = True

    def _join_stage(self) -> None:
        if self._stage_thread is not None:
            self._stage_thread.join()
            self._stage_thread = None
        if self._stage_error is not None:
            self._staged = False
            self._stage_error = None

    def close(self) -> None:
        """Release the slab segments (the executor stays usable)."""
        self._join_stage()
        self._staged = False
        if self._param_segs is not None:
            for seg in self._param_segs:
                self.executor.slab.free(seg)
            for seg in self._grad_segs:
                self.executor.slab.free(seg)
            self._param_segs = None
            self._param_views = None
            self._grad_segs = [None] * self.world_size
        self.pipeline_broadcast = False
