"""Real data-parallel training steps over a worker pool.

:class:`ParallelDDP` executes the exact computation of
:meth:`repro.training.Trainer.ddp_step` — per-rank forward/backward, a
gradient all-reduce, one optimizer step — but the per-rank work runs on
executor workers instead of sequentially in the driver.

Determinism contract: the driver reduces the per-rank flattened
gradients in **fixed rank order** with a running ``+=`` left fold, which
is bit-identical to the serial ``ddp_step``'s pairwise accumulation.
With eager rank losses (``compiled=False``) the per-rank gradients are
themselves bitwise equal to the serial trainer's (same NumPy ops, same
inputs), so the whole parallel step is bitwise-deterministic and matches
serial exactly; with compiled rank steps the results agree to summation
reassociation (~1e-15, asserted at 1e-12 in the tests).

Wire format: parameters are flattened once per step into a shared slab
segment every rank reads; each rank owns a private gradient segment it
writes.  Ranks are pinned to workers (``rank % n_workers``) so each
worker's trainer state — collate cache, compiled loss plans, scatter
memos — is reused across steps exactly like a persistent DDP rank.
"""

from __future__ import annotations

import time
from typing import List, Optional, Sequence

import numpy as np

from .executor import BaseExecutor
from .shm import SlabFull
from .worker import GradStep, InstallModel, SetupRank, flatten_params

__all__ = ["ParallelDDP"]


class ParallelDDP:
    """Drive synchronous DDP steps of a trainer through an executor.

    Parameters
    ----------
    trainer:
        The driver-side :class:`~repro.training.Trainer`; its optimizer,
        EMA and scheduler state stay authoritative — workers only
        compute gradients.
    executor:
        Any :class:`~repro.parallel.BaseExecutor`.  The model and one
        :class:`~repro.parallel.worker.SetupRank` per rank are installed
        at construction.
    world_size:
        Number of DDP ranks.
    compiled:
        Whether worker rank trainers use compiled loss plans.  ``False``
        gives bitwise equality with the serial eager trainer; ``True``
        (default) is faster and agrees to ~1e-15.
    """

    def __init__(
        self,
        trainer,
        executor: BaseExecutor,
        world_size: int,
        compiled: bool = True,
    ) -> None:
        if world_size <= 0:
            raise ValueError("world_size must be positive")
        self.trainer = trainer
        self.executor = executor
        self.world_size = int(world_size)
        self.params = list(trainer.model.parameters())
        if len(trainer.optimizer.params) != len(self.params):
            raise ValueError(
                "parallel DDP flattens the full parameter list; trainers "
                "with frozen subsets (freeze_representation) are not supported"
            )
        self._n_flat = int(sum(p.data.size for p in self.params))
        self._step_id = 0
        self.step_seconds: List[float] = []

        executor.install(InstallModel(version=0, model=trainer.model))
        for rank in range(self.world_size):
            executor.install(
                SetupRank(
                    rank=rank,
                    model_version=0,
                    graphs=trainer.graphs,
                    scaler_mean=trainer.scaler.mean_per_atom,
                    scaler_std=trainer.scaler.std_per_atom,
                    loss_weighting=trainer.loss_weighting,
                    compiled=compiled,
                ),
                worker=rank % executor.n_workers,
            )
        # Parameter broadcast segment + one gradient segment per rank.
        slab = executor.slab
        try:
            self._param_seg = slab.alloc((self._n_flat,), np.float64)
            self._grad_segs = [
                slab.alloc((self._n_flat,), np.float64)
                for _ in range(self.world_size)
            ]
        except SlabFull:
            # Inline fallback: params ride in each task, grads in results.
            self._param_seg = None
            self._grad_segs = [None] * self.world_size

    # -- one step ----------------------------------------------------------------

    def step(
        self, rank_batches: Sequence[Sequence[int]], capacity: int = 0
    ) -> float:
        """One synchronous DDP step; returns the mean loss across ranks.

        ``rank_batches`` is indexed by rank; empty entries sit out (the
        world for averaging is the number of participating ranks, exactly
        as in the serial ``ddp_step``).
        """
        if len(rank_batches) > self.world_size:
            raise ValueError(
                f"{len(rank_batches)} rank batches for world size {self.world_size}"
            )
        t0 = time.monotonic()
        flat = flatten_params(self.params)
        if self._param_seg is not None:
            self.executor.slab.view(self._param_seg)[...] = flat
        active = [
            (rank, tuple(batch))
            for rank, batch in enumerate(rank_batches)
            if len(batch)
        ]
        if not active:
            raise ValueError("ddp step received no non-empty batches")
        for rank, batch in active:
            task = GradStep(
                task_id=(self._step_id, rank),
                rank=rank,
                batch_indices=batch,
                capacity=capacity,
                params=self._param_seg if self._param_seg is not None else flat,
                grads=self._grad_segs[rank],
            )
            self.executor.submit(task, worker=rank % self.executor.n_workers)
        results = self.executor.drain()
        self._step_id += 1

        losses: List[float] = []
        total: Optional[np.ndarray] = None
        for rank, _ in active:  # fixed rank order: bitwise == serial fold
            res = results[(self._step_id - 1, rank)]
            if "error" in res:
                raise RuntimeError(f"rank {rank} failed:\n{res['error']}")
            losses.append(res["loss"])
            g = (
                self.executor.slab.view(self._grad_segs[rank])
                if self._grad_segs[rank] is not None
                else res["grad"]
            )
            if total is None:
                total = np.array(g, dtype=np.float64, copy=True)
            else:
                total += g
        world = len(active)
        offset = 0
        for p in self.params:
            n = p.data.size
            p.grad = (total[offset : offset + n] / world).reshape(p.data.shape)
            offset += n
        self.trainer.optimizer.step()
        self.trainer.ema.update()
        self.step_seconds.append(time.monotonic() - t0)
        return float(np.mean(losses))

    def close(self) -> None:
        """Release the slab segments (the executor stays usable)."""
        if self._param_seg is not None:
            self.executor.slab.free(self._param_seg)
            for seg in self._grad_segs:
                self.executor.slab.free(seg)
            self._param_seg = None
            self._grad_segs = [None] * self.world_size
