"""Differentiable activation and loss functions."""

from __future__ import annotations

import numpy as np

from .engine import Function, Tensor, as_tensor

__all__ = ["silu", "relu", "softplus", "sigmoid", "mse", "weighted_mse", "l2_norm"]


class SiLU(Function):
    """``x * sigmoid(x)`` — MACE's nonlinearity for radial MLPs/readouts."""

    supports_out = True
    out_alias_safe = True  # sig is computed before the out write

    def forward(self, a, out=None):
        sig = 1.0 / (1.0 + np.exp(-a))
        self.saved = (a, sig)
        if out is not None:
            return np.multiply(a, sig, out=out)
        return a * sig

    def backward(self, grad):
        a, sig = self.saved
        return (grad * (sig * (1.0 + a * (1.0 - sig))),)


def silu(x: Tensor) -> Tensor:
    """Sigmoid-weighted linear unit."""
    return SiLU.apply(x)


class ReLU(Function):
    supports_out = True
    out_alias_safe = True

    def forward(self, a, out=None):
        self.saved = (a > 0.0,)
        if out is not None:
            return np.maximum(a, 0.0, out=out)
        return np.maximum(a, 0.0)

    def backward(self, grad):
        (mask,) = self.saved
        return (grad * mask,)


def relu(x: Tensor) -> Tensor:
    """Rectified linear unit."""
    return ReLU.apply(x)


class Sigmoid(Function):
    supports_out = True
    out_alias_safe = True

    def forward(self, a, out=None):
        if out is not None:
            np.exp(np.negative(a, out=out), out=out)
            out += 1.0
            np.divide(1.0, out, out=out)
        else:
            out = 1.0 / (1.0 + np.exp(-a))
        self.saved = (out,)
        return out

    def backward(self, grad):
        (out,) = self.saved
        return (grad * out * (1.0 - out),)


def sigmoid(x: Tensor) -> Tensor:
    """Logistic sigmoid."""
    return Sigmoid.apply(x)


class Softplus(Function):
    supports_out = True
    out_alias_safe = True

    def forward(self, a, out=None):
        self.saved = (a,)
        if out is not None:
            return np.logaddexp(0.0, a, out=out)
        return np.logaddexp(0.0, a)

    def backward(self, grad):
        (a,) = self.saved
        return (grad / (1.0 + np.exp(-a)),)


def softplus(x: Tensor) -> Tensor:
    """Smooth ReLU, ``log(1 + exp(x))`` (numerically stable)."""
    return Softplus.apply(x)


def mse(pred: Tensor, target) -> Tensor:
    """Mean squared error against a constant target."""
    diff = pred - as_tensor(target).detach()
    return (diff * diff).mean()


def weighted_mse(pred: Tensor, target, weights) -> Tensor:
    """Per-sample weighted MSE — the paper trains with a weighted loss (§5.2).

    ``weights`` are treated as constants and normalized to sum to 1.
    """
    w = np.asarray(weights, dtype=np.float64)
    total = w.sum()
    if total <= 0:
        raise ValueError("weights must have positive sum")
    w = w / total
    diff = pred - as_tensor(target).detach()
    return (as_tensor(w) * diff * diff).sum()


def l2_norm(x: Tensor, eps: float = 1e-12) -> Tensor:
    """``sqrt(sum(x^2) + eps)`` — safe at the origin."""
    return ((x * x).sum() + eps).sqrt()
