"""Numerical gradient verification.

Every custom backward pass in this repository (the optimized kernels most of
all) is validated against central finite differences.  This mirrors how the
paper's hand-written CUDA kernels must be validated against the e3nn
reference.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from .engine import Tensor

__all__ = ["numerical_gradient", "check_gradients"]


def numerical_gradient(
    fn: Callable[..., Tensor],
    inputs: Sequence[Tensor],
    wrt: int,
    eps: float = 1e-6,
) -> np.ndarray:
    """Central finite-difference gradient of scalar ``fn(*inputs)`` wrt one input."""
    base = [t.data.copy() for t in inputs]
    target = base[wrt]
    grad = np.zeros_like(target, dtype=np.float64)
    it = np.nditer(target, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        orig = target[idx]
        target[idx] = orig + eps
        plus = fn(*[Tensor(b) for b in base]).item()
        target[idx] = orig - eps
        minus = fn(*[Tensor(b) for b in base]).item()
        target[idx] = orig
        grad[idx] = (plus - minus) / (2.0 * eps)
        it.iternext()
    return grad


def check_gradients(
    fn: Callable[..., Tensor],
    inputs: Sequence[Tensor],
    atol: float = 1e-5,
    rtol: float = 1e-4,
    eps: float = 1e-6,
) -> None:
    """Assert analytic and numerical gradients of scalar ``fn`` agree.

    Raises ``AssertionError`` with the offending input index and the maximum
    deviation otherwise.
    """
    tensors = [Tensor(t.data.copy(), requires_grad=True) for t in inputs]
    out = fn(*tensors)
    if out.size != 1:
        raise ValueError("check_gradients needs a scalar function")
    out.backward()
    for i, t in enumerate(tensors):
        num = numerical_gradient(fn, tensors, i, eps=eps)
        ana = t.grad if t.grad is not None else np.zeros_like(t.data)
        if not np.allclose(ana, num, atol=atol, rtol=rtol):
            dev = float(np.abs(ana - num).max())
            raise AssertionError(
                f"gradient mismatch on input {i}: max deviation {dev:.3e}"
            )
