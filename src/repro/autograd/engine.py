"""A reverse-mode automatic differentiation engine over NumPy arrays.

This is the repository's substitute for PyTorch's autograd: a minimal but
complete tape-based engine.  Every differentiable operation is a
:class:`Function` with an explicit backward rule; :class:`Tensor` wraps a
NumPy array plus its position in the tape.  The MACE model, its optimized
kernels (which register *custom* backward passes, exactly as the paper's
CUDA kernels must) and the training loop are all built on it.

Design notes
------------
* Broadcasting follows NumPy; backward un-broadcasts by summing over the
  broadcast axes.
* The tape is built eagerly; ``backward()`` runs a topological sort and
  accumulates ``grad`` on leaves (and interior nodes that request it).
* ``no_grad()`` suspends taping for label generation / evaluation.
"""

from __future__ import annotations

import contextlib
import itertools
import threading
from typing import Callable, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

__all__ = ["Tensor", "Function", "no_grad", "is_grad_enabled", "as_tensor"]

# Monotonic tensor serial numbers.  Every Tensor gets the next value at
# construction; unlike ``id()`` a serial is never recycled, so serials
# are safe dictionary keys for bookkeeping that outlives the tensors
# (eager backward below, slot assignment in repro.runtime.plan).
# ``itertools.count`` increments under the GIL, so serials stay unique
# across threads.
_SERIALS = itertools.count()


class _EngineState(threading.local):
    """Per-thread grad mode and active tape recorder.

    Thread-local rather than module-global so the thread-pool executor
    (:mod:`repro.parallel`) can run independent forward/backward passes
    concurrently: one worker's ``no_grad()`` or plan capture must never
    leak into another's training step.  ``threading.local`` runs
    ``__init__`` once per thread on first touch, giving every thread the
    default state.
    """

    def __init__(self) -> None:
        self.grad_enabled = [True]
        self.recorder = None


_STATE = _EngineState()


def _set_recorder(recorder):
    """Install (or clear, with ``None``) the active tape recorder.

    Returns the previously installed recorder so callers can restore it;
    used only by :mod:`repro.runtime`.  The recorder slot is per-thread.
    """
    previous = _STATE.recorder
    _STATE.recorder = recorder
    return previous


@contextlib.contextmanager
def no_grad():
    """Context manager disabling tape construction (this thread only)."""
    _STATE.grad_enabled.append(False)
    try:
        yield
    finally:
        _STATE.grad_enabled.pop()


def is_grad_enabled() -> bool:
    """Whether operations currently record to the tape."""
    return _STATE.grad_enabled[-1]


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` back to ``shape`` by summing broadcast dimensions."""
    if grad.shape == shape:
        return grad
    # Sum leading axes added by broadcasting.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Sum axes that were size-1 in the original shape.
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad.reshape(shape)


class Function:
    """Base class of differentiable operations.

    Subclasses implement :meth:`forward` (returning a raw ndarray) and
    :meth:`backward` (returning one gradient per input, or ``None`` for
    non-differentiable inputs).  ``self.saved`` may hold anything forward
    wants to reuse.

    ``grad_mask`` is an optional per-tensor-input needed-gradient mask
    (aligned with the backward return tuple).  The eager engine never
    sets it — every instance computes all gradients, as before.  A
    compiled plan (:mod:`repro.runtime`) sets it on its private replayed
    instances so expensive backward rules can skip gradients nobody
    consumes (constant-folded operands, pruned parameter branches);
    honoring the mask is optional and purely an optimization, since the
    caller drops unrequested gradients either way.

    ``infer_spec`` is an optional static shape/dtype rule consumed by the
    plan verifier (:mod:`repro.analysis`): a callable taking
    ``(abstract_args, kwargs)`` — the positional argument list with
    tensor positions replaced by ``repro.analysis.specs.ArraySpec`` —
    and returning the output ``ArraySpec``.  Ops defined inside the
    repository are covered by the registry in
    :mod:`repro.analysis.specs`; third-party Functions can either set
    this attribute or call ``repro.analysis.register_spec``.

    ``supports_out`` declares the opt-in write-into protocol: a subclass
    setting it ``True`` accepts an ``out=`` keyword in :meth:`forward`
    and, when a buffer is passed, writes the result into it and returns
    that same buffer.  The contract is strict so the arena planner in
    :mod:`repro.runtime.plan` can preassign buffers:

    * ``out`` always has exactly the shape/dtype of the eager result;
    * with ``out=None`` (the eager path — :meth:`apply` never passes a
      buffer) behavior is bit-identical to before the migration;
    * forward must not retain any reference to ``out`` beyond the
      returned value and ``self.saved`` (enforced by the
      ``supports-out-retains-buffer`` lint rule) — the planner may hand
      the same buffer to other instructions once this value dies.

    ``out_alias_safe`` additionally declares that ``out`` may alias one
    of the operand arrays (true for straight NumPy ufunc elementwise
    ops, which read each element before writing it; never true for
    GEMMs, gathers, reductions or the fused kernels).  Only
    ``out_alias_safe`` ops are eligible for operand-buffer *donation*;
    everything else still gets an arena buffer that is guaranteed
    disjoint from its live operands.
    """

    grad_mask: Optional[Tuple[bool, ...]] = None
    infer_spec: Optional[Callable] = None
    supports_out: bool = False
    out_alias_safe: bool = False

    def __init__(self) -> None:
        self.inputs: Tuple["Tensor", ...] = ()
        self.saved: tuple = ()

    def forward(self, *args, **kwargs) -> np.ndarray:  # pragma: no cover
        raise NotImplementedError

    def backward(self, grad: np.ndarray) -> Sequence[Optional[np.ndarray]]:
        raise NotImplementedError  # pragma: no cover

    @classmethod
    def apply(cls, *args, **kwargs) -> "Tensor":
        """Run forward, wiring the result into the tape when enabled."""
        fn = cls()
        tensors = tuple(a for a in args if isinstance(a, Tensor))
        fn.inputs = tensors
        raw = tuple(a.data if isinstance(a, Tensor) else a for a in args)
        out_data = fn.forward(*raw, **kwargs)
        requires = is_grad_enabled() and any(t.requires_grad for t in tensors)
        out = Tensor(out_data, requires_grad=requires)
        if requires:
            out._ctx = fn
        recorder = _STATE.recorder
        if recorder is not None:
            recorder.record(fn, args, kwargs, out)
        return out


TensorLike = Union["Tensor", np.ndarray, float, int]


class Tensor:
    """A NumPy array with gradient bookkeeping.

    Parameters
    ----------
    data:
        Array (or scalar) payload; copied only if conversion requires it.
    requires_grad:
        Whether gradients should accumulate in ``.grad`` on backward.
    """

    __slots__ = ("data", "grad", "requires_grad", "_ctx", "_serial")
    __array_priority__ = 100  # numpy defers binary ops to Tensor

    def __init__(self, data, requires_grad: bool = False) -> None:
        if isinstance(data, Tensor):
            data = data.data
        self.data = np.asarray(data, dtype=np.float64 if np.asarray(data).dtype.kind == "f" else None)
        if self.data.dtype.kind not in "fiu":
            raise TypeError(f"unsupported dtype {self.data.dtype}")
        if self.data.dtype.kind in "iu" and requires_grad:
            raise TypeError("integer tensors cannot require grad")
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = bool(requires_grad)
        self._ctx: Optional[Function] = None
        self._serial: int = next(_SERIALS)

    # -- basic introspection ----------------------------------------------------

    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    @property
    def serial(self) -> int:
        """Monotonic creation serial — a never-recycled identity key."""
        return self._serial

    def numpy(self) -> np.ndarray:
        """The underlying array (no copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data)

    def detach(self) -> "Tensor":
        """A view sharing data but cut from the tape."""
        return Tensor(self.data, requires_grad=False)

    def zero_grad(self) -> None:
        self.grad = None

    # -- pickling ----------------------------------------------------------------
    #
    # Serial numbers are *process-local* identity: restoring a pickled
    # serial into another process (or even the same one) could collide
    # with a live tensor's serial and miscompile any plan captured over
    # both.  An unpickled tensor is therefore a fresh leaf: new serial,
    # no tape context.  The tape itself never crosses pickle — compiled
    # plans strip ``fn.inputs`` at build time, and ad-hoc tensors lose
    # their history (``.data``/``.grad`` survive, ``backward()`` does
    # not), which is exactly the cross-process contract the parallel
    # workers need.

    def __getstate__(self):
        return (self.data, self.grad, self.requires_grad)

    def __setstate__(self, state) -> None:
        self.data, self.grad, self.requires_grad = state
        self._ctx = None
        self._serial = next(_SERIALS)

    def __repr__(self) -> str:
        grad = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}, dtype={self.dtype}{grad})"

    # -- backward ----------------------------------------------------------------

    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Reverse-mode sweep accumulating ``.grad`` on requiring tensors."""
        if grad is None:
            if self.size != 1:
                raise ValueError("backward() without gradient needs a scalar output")
            grad = np.ones_like(self.data, dtype=np.float64)
        grad = np.asarray(grad, dtype=np.float64)
        if grad.shape != self.shape:
            raise ValueError(f"gradient shape {grad.shape} != output shape {self.shape}")

        # Iterative post-order DFS: deep op chains (thousands of nodes)
        # must not hit Python's recursion limit.  Bookkeeping is keyed on
        # tensor serial numbers, not id(): serials are never recycled, so
        # the dictionaries stay collision-free even if the allocator
        # reuses a freed tensor's address mid-sweep.
        topo: List[Tensor] = []
        visited = set()
        stack: List[Tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, expanded = stack.pop()
            if node._ctx is None:
                continue
            if expanded:
                topo.append(node)
                continue
            if node._serial in visited:
                continue
            visited.add(node._serial)
            stack.append((node, True))
            for parent in node._ctx.inputs:
                stack.append((parent, False))

        grads: dict = {self._serial: grad}
        for node in reversed(topo):
            g = grads.pop(node._serial, None)
            if g is None:
                continue
            ctx = node._ctx
            in_grads = ctx.backward(g)
            for parent, ig in zip(ctx.inputs, in_grads):
                if ig is None or not (parent.requires_grad or parent._ctx is not None):
                    continue
                ig = np.asarray(ig, dtype=np.float64)
                if parent.requires_grad:
                    if parent.grad is None:
                        parent.grad = np.zeros(parent.shape, dtype=np.float64)
                    parent.grad += ig
                if parent._ctx is not None:
                    key = parent._serial
                    if key in grads:
                        grads[key] = grads[key] + ig
                    else:
                        grads[key] = ig
        if self.requires_grad and self._ctx is None:
            if self.grad is None:
                self.grad = np.zeros(self.shape, dtype=np.float64)
            self.grad += grad

    # -- operators ---------------------------------------------------------------

    def __add__(self, other: TensorLike) -> "Tensor":
        return Add.apply(self, as_tensor(other))

    def __radd__(self, other: TensorLike) -> "Tensor":
        return Add.apply(as_tensor(other), self)

    def __sub__(self, other: TensorLike) -> "Tensor":
        return Sub.apply(self, as_tensor(other))

    def __rsub__(self, other: TensorLike) -> "Tensor":
        return Sub.apply(as_tensor(other), self)

    def __mul__(self, other: TensorLike) -> "Tensor":
        return Mul.apply(self, as_tensor(other))

    def __rmul__(self, other: TensorLike) -> "Tensor":
        return Mul.apply(as_tensor(other), self)

    def __truediv__(self, other: TensorLike) -> "Tensor":
        return Div.apply(self, as_tensor(other))

    def __rtruediv__(self, other: TensorLike) -> "Tensor":
        return Div.apply(as_tensor(other), self)

    def __neg__(self) -> "Tensor":
        return Neg.apply(self)

    def __pow__(self, exponent: float) -> "Tensor":
        return Pow.apply(self, exponent=float(exponent))

    def __matmul__(self, other: "Tensor") -> "Tensor":
        return MatMul.apply(self, as_tensor(other))

    def __getitem__(self, key) -> "Tensor":
        return GetItem.apply(self, key=key)

    # -- shaping -----------------------------------------------------------------

    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        return Reshape.apply(self, shape=shape)

    def transpose(self, axes: Optional[Tuple[int, ...]] = None) -> "Tensor":
        return Transpose.apply(self, axes=axes)

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    # -- reductions ---------------------------------------------------------------

    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        return Sum.apply(self, axis=axis, keepdims=keepdims)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        return Mean.apply(self, axis=axis, keepdims=keepdims)

    # -- elementwise --------------------------------------------------------------

    def exp(self) -> "Tensor":
        return Exp.apply(self)

    def log(self) -> "Tensor":
        return Log.apply(self)

    def sqrt(self) -> "Tensor":
        return Sqrt.apply(self)

    def tanh(self) -> "Tensor":
        return Tanh.apply(self)


def as_tensor(x: TensorLike) -> Tensor:
    """Coerce scalars/arrays to (non-grad) tensors; pass tensors through."""
    if isinstance(x, Tensor):
        return x
    return Tensor(np.asarray(x, dtype=np.float64))


# -- primitive Functions -----------------------------------------------------------


class Add(Function):
    supports_out = True
    out_alias_safe = True

    def forward(self, a, b, out=None):
        self.saved = (np.shape(a), np.shape(b))
        return np.add(a, b, out=out) if out is not None else a + b

    def backward(self, grad):
        sa, sb = self.saved
        na, nb = self.grad_mask or (True, True)
        return (
            _unbroadcast(grad, sa) if na else None,
            _unbroadcast(grad, sb) if nb else None,
        )


class Sub(Function):
    supports_out = True
    out_alias_safe = True

    def forward(self, a, b, out=None):
        self.saved = (np.shape(a), np.shape(b))
        return np.subtract(a, b, out=out) if out is not None else a - b

    def backward(self, grad):
        sa, sb = self.saved
        na, nb = self.grad_mask or (True, True)
        return (
            _unbroadcast(grad, sa) if na else None,
            _unbroadcast(-grad, sb) if nb else None,
        )


class Mul(Function):
    supports_out = True
    out_alias_safe = True

    def forward(self, a, b, out=None):
        self.saved = (a, b)
        return np.multiply(a, b, out=out) if out is not None else a * b

    def backward(self, grad):
        a, b = self.saved
        na, nb = self.grad_mask or (True, True)
        return (
            _unbroadcast(grad * b, a.shape) if na else None,
            _unbroadcast(grad * a, b.shape) if nb else None,
        )


class Div(Function):
    supports_out = True
    out_alias_safe = True

    def forward(self, a, b, out=None):
        self.saved = (a, b)
        return np.divide(a, b, out=out) if out is not None else a / b

    def backward(self, grad):
        a, b = self.saved
        na, nb = self.grad_mask or (True, True)
        ga = _unbroadcast(grad / b, a.shape) if na else None
        gb = _unbroadcast(-grad * a / (b * b), b.shape) if nb else None
        return ga, gb


class Neg(Function):
    supports_out = True
    out_alias_safe = True

    def forward(self, a, out=None):
        return np.negative(a, out=out) if out is not None else -a

    def backward(self, grad):
        return (-grad,)


class Pow(Function):
    supports_out = True
    out_alias_safe = True

    def forward(self, a, exponent: float, out=None):
        self.saved = (a, exponent)
        return np.power(a, exponent, out=out) if out is not None else a ** exponent

    def backward(self, grad):
        a, p = self.saved
        return (grad * p * a ** (p - 1.0),)


class MatMul(Function):
    supports_out = True  # GEMM output must stay disjoint from operands

    def forward(self, a, b, out=None):
        self.saved = (a, b)
        return np.matmul(a, b, out=out) if out is not None else a @ b

    def backward(self, grad):
        a, b = self.saved
        need_a, need_b = self.grad_mask or (True, True)
        if a.ndim == 1 and b.ndim == 1:  # inner product
            return grad * b, grad * a
        if b.ndim == 1:  # (..., n, k) @ (k,) -> (..., n)
            ga = _unbroadcast(grad[..., None] * b, a.shape) if need_a else None
            gb = np.einsum("...n,...nk->k", grad, a) if need_b else None
            return ga, gb
        if a.ndim == 1:  # (k,) @ (k, m) -> (m,)
            ga = b @ grad
            gb = np.outer(a, grad)
            return ga, _unbroadcast(gb, b.shape)
        ga = (
            _unbroadcast(grad @ np.swapaxes(b, -1, -2), a.shape) if need_a else None
        )
        gb = (
            _unbroadcast(np.swapaxes(a, -1, -2) @ grad, b.shape) if need_b else None
        )
        return ga, gb


def _is_basic_index(key) -> bool:
    """Whether ``key`` is pure basic indexing (ints/slices/None/...)."""
    parts = key if isinstance(key, tuple) else (key,)
    return all(
        isinstance(k, (int, slice)) or k is None or k is Ellipsis for k in parts
    )


class GetItem(Function):
    def forward(self, a, key):
        self.saved = (a.shape, key)
        return a[key]

    def backward(self, grad):
        shape, key = self.saved
        out = np.zeros(shape, dtype=np.float64)
        if _is_basic_index(key):
            # Basic indexing never selects an element twice, so the
            # scatter-add is a plain (much cheaper) assignment.
            out[key] = grad
        else:
            np.add.at(out, key, grad)
        return (out,)


class Reshape(Function):
    def forward(self, a, shape):
        self.saved = (a.shape,)
        return a.reshape(shape)

    def backward(self, grad):
        (shape,) = self.saved
        return (grad.reshape(shape),)


class Transpose(Function):
    def forward(self, a, axes):
        self.saved = (axes,)
        return np.transpose(a, axes)

    def backward(self, grad):
        (axes,) = self.saved
        if axes is None:
            return (np.transpose(grad),)
        # Negative axes are valid forward arguments but break argsort's
        # inverse (argsort((-1, 0, 1)) != inverse permutation); normalize
        # mod ndim before inverting.
        axes = tuple(int(a) % grad.ndim for a in axes)
        inv = np.argsort(axes)
        return (np.transpose(grad, inv),)


class Sum(Function):
    supports_out = True  # reduction: out may not alias the operand

    def forward(self, a, axis, keepdims, out=None):
        self.saved = (a.shape, axis, keepdims)
        return a.sum(axis=axis, keepdims=keepdims, out=out)

    def backward(self, grad):
        shape, axis, keepdims = self.saved
        if axis is None:
            return (np.broadcast_to(grad, shape).astype(np.float64),)
        if not keepdims:
            axes = axis if isinstance(axis, tuple) else (axis,)
            axes = tuple(a % len(shape) for a in axes)
            for a in sorted(axes):
                grad = np.expand_dims(grad, a)
        return (np.broadcast_to(grad, shape).astype(np.float64),)


class Mean(Function):
    supports_out = True  # reduction: out may not alias the operand

    def forward(self, a, axis, keepdims, out=None):
        self.saved = (a.shape, axis, keepdims)
        return a.mean(axis=axis, keepdims=keepdims, out=out)

    def backward(self, grad):
        shape, axis, keepdims = self.saved
        if axis is None:
            count = int(np.prod(shape))
            return (np.broadcast_to(grad / count, shape).astype(np.float64),)
        axes = axis if isinstance(axis, tuple) else (axis,)
        axes = tuple(a % len(shape) for a in axes)
        count = int(np.prod([shape[a] for a in axes]))
        if not keepdims:
            for a in sorted(axes):
                grad = np.expand_dims(grad, a)
        return (np.broadcast_to(grad / count, shape).astype(np.float64),)


class Exp(Function):
    supports_out = True
    out_alias_safe = True

    def forward(self, a, out=None):
        out = np.exp(a, out=out) if out is not None else np.exp(a)
        self.saved = (out,)
        return out

    def backward(self, grad):
        (out,) = self.saved
        return (grad * out,)


class Log(Function):
    supports_out = True
    out_alias_safe = True

    def forward(self, a, out=None):
        self.saved = (a,)
        return np.log(a, out=out) if out is not None else np.log(a)

    def backward(self, grad):
        (a,) = self.saved
        return (grad / a,)


class Sqrt(Function):
    supports_out = True
    out_alias_safe = True

    def forward(self, a, out=None):
        out = np.sqrt(a, out=out) if out is not None else np.sqrt(a)
        self.saved = (out,)
        return out

    def backward(self, grad):
        (out,) = self.saved
        return (grad / (2.0 * out),)


class Tanh(Function):
    supports_out = True
    out_alias_safe = True

    def forward(self, a, out=None):
        out = np.tanh(a, out=out) if out is not None else np.tanh(a)
        self.saved = (out,)
        return out

    def backward(self, grad):
        (out,) = self.saved
        return (grad * (1.0 - out * out),)
