"""Structural and graph-specific autograd operations.

MACE's message passing needs a handful of ops beyond elementwise algebra:
gathering per-atom features onto edges, scatter-summing edge messages back
onto atoms, pooling per-atom energies per graph, and concatenation.  These
are the NumPy analogues of ``torch.index_select`` / ``scatter_add`` /
``segment_sum``.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from .engine import Function, Tensor, _unbroadcast, as_tensor

__all__ = [
    "gather_rows",
    "segment_sum",
    "concatenate",
    "stack",
    "where",
    "clip",
    "einsum_tp",
]


def _scatter_add_rows(
    fn: Function,
    shape,
    index: np.ndarray,
    values: np.ndarray,
    out: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Row scatter-add with a per-instance plan for replayed Functions.

    Eager execution creates a fresh ``Function`` per call, so the first
    call takes the plain ``np.add.at`` path and merely remembers the
    index array.  A *replayed* instance (see :mod:`repro.runtime`) is
    called repeatedly with the identical index object; from the second
    call on it scatters through a memoized stable-sort + ``reduceat``
    plan, which is severalfold faster on wide rows.  The stable sort
    preserves the per-segment contribution order, so results match the
    ``add.at`` path to summation-reassociation error (~1e-15), within
    the runtime's 1e-10 equivalence contract.
    """
    state = fn.__dict__.get("_scatter_plan")
    if out is None:
        out = np.zeros(shape, dtype=np.float64)
    else:
        out.fill(0.0)
    if state is None or state[0] is not index:
        fn._scatter_plan = (index, None)
        np.add.at(out, index, values)
        return out
    plan = state[1]
    if plan is None:
        order = np.argsort(index, kind="stable")
        sorted_ids = index[order]
        if sorted_ids.size:
            starts = np.flatnonzero(np.r_[True, sorted_ids[1:] != sorted_ids[:-1]])
            segments = sorted_ids[starts]
        else:
            starts = segments = sorted_ids
        plan = (order, segments, starts)
        fn._scatter_plan = (index, plan)
    order, segments, starts = plan
    if starts.size:
        out[segments] = np.add.reduceat(values[order], starts, axis=0)
    return out


class GatherRows(Function):
    """``out[e] = x[index[e]]`` along axis 0 (edge gather)."""

    supports_out = True  # gather: out may not alias the source rows

    def forward(self, x, index, out=None):
        self.saved = (x.shape, index)
        if out is not None:
            # mode="clip" keeps take on its unbuffered fast path (the
            # default "raise" is ~3x slower with out=).  Bounds were
            # checked by the eager capture pass; an out-of-range index in
            # a replayed input would trip the fancy-index path at capture
            # time, never this one.
            return np.take(x, index, axis=0, out=out, mode="clip")
        return x[index]

    def backward(self, grad):
        shape, index = self.saved
        return (_scatter_add_rows(self, shape, index, grad), None)


def gather_rows(x: Tensor, index) -> Tensor:
    """Differentiable row gather: ``out[i] = x[index[i]]``.

    ``index`` is normally a raw integer array (a structural constant of
    the graph, burned into compiled plans).  It may also be an integer
    :class:`Tensor` (``requires_grad=False``), in which case a compiled
    plan that lists it among its inputs treats the gather pattern as a
    replayable *input* — the MD calculator uses this so neighbor-list
    rebuilds replay the same plan instead of recapturing.
    """
    if not isinstance(index, Tensor):
        index = np.asarray(index, dtype=np.int64)
    return GatherRows.apply(x, index)


class SegmentSum(Function):
    """``out[s] = sum_{i : seg[i] == s} x[i]`` (message aggregation)."""

    supports_out = True  # scatter: out may not alias the messages

    def forward(self, x, segment_ids, num_segments, out=None):
        self.saved = (segment_ids,)
        return _scatter_add_rows(
            self, (num_segments,) + x.shape[1:], segment_ids, x, out=out
        )

    def backward(self, grad):
        (segment_ids,) = self.saved
        return (grad[segment_ids], None, None)


def segment_sum(x: Tensor, segment_ids, num_segments: int) -> Tensor:
    """Differentiable scatter-add along axis 0.

    The aggregation operation of equation (1): pooling messages from all
    neighbors ``j`` onto the receiving atom ``i`` (and, reused, pooling
    per-atom energies per graph).  ``segment_ids`` may be an integer
    :class:`Tensor` to make the scatter pattern a replayable plan input
    (see :func:`gather_rows`).
    """
    if not isinstance(segment_ids, Tensor):
        segment_ids = np.asarray(segment_ids, dtype=np.int64)
    return SegmentSum.apply(x, segment_ids, int(num_segments))


class Concatenate(Function):
    supports_out = True  # copies into out; may not alias an operand

    def forward(self, *arrays, axis=0, out=None):
        self.saved = (axis, [a.shape[axis] for a in arrays])
        if out is not None:
            return np.concatenate(arrays, axis=axis, out=out)
        return np.concatenate(arrays, axis=axis)

    def backward(self, grad):
        axis, sizes = self.saved
        splits = np.cumsum(sizes)[:-1]
        return tuple(np.split(grad, splits, axis=axis))


def concatenate(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Differentiable concatenation."""
    return Concatenate.apply(*[as_tensor(t) for t in tensors], axis=axis)


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Differentiable stack along a new axis."""
    expanded = []
    for t in tensors:
        t = as_tensor(t)
        shape = list(t.shape)
        shape.insert(axis if axis >= 0 else len(shape) + axis + 1, 1)
        expanded.append(t.reshape(tuple(shape)))
    return concatenate(expanded, axis=axis)


class Where(Function):
    def forward(self, a, b, cond):
        self.saved = (cond, a.shape, b.shape)
        return np.where(cond, a, b)

    def backward(self, grad):
        cond, shape_a, shape_b = self.saved
        # Operands may have been broadcast against each other / the
        # condition; reduce each gradient back to its operand's shape.
        ga = _unbroadcast(np.where(cond, grad, 0.0), shape_a)
        gb = _unbroadcast(np.where(cond, 0.0, grad), shape_b)
        return (ga, gb)


def where(cond: np.ndarray, a: Tensor, b: Tensor) -> Tensor:
    """Differentiable selection (gradient flows to the selected branch)."""
    return Where.apply(as_tensor(a), as_tensor(b), cond=np.asarray(cond, dtype=bool))


class Clip(Function):
    supports_out = True
    out_alias_safe = True

    def forward(self, a, lo, hi, out=None):
        self.saved = (a, lo, hi)
        if out is not None:
            return np.clip(a, lo, hi, out=out)
        return np.clip(a, lo, hi)

    def backward(self, grad):
        a, lo, hi = self.saved
        mask = np.ones_like(a)
        if lo is not None:
            mask = mask * (a >= lo)
        if hi is not None:
            mask = mask * (a <= hi)
        return (grad * mask, None, None)


def clip(x: Tensor, lo: Optional[float], hi: Optional[float]) -> Tensor:
    """Differentiable clamp (zero gradient outside the active range)."""
    return Clip.apply(x, lo, hi)


class EinsumTP(Function):
    """Generic two-operand einsum with a constant third factor.

    Used by the *baseline* kernels to emulate e3nn's per-segment dense
    contractions: ``out = einsum(spec, const, a, b)`` where ``const`` is a
    CG block.  Backward einsums are derived by index bookkeeping.
    """

    def forward(self, a, b, const, spec_fwd, spec_da, spec_db):
        self.saved = (a, b, const, spec_da, spec_db)
        return np.einsum(spec_fwd, const, a, b, optimize=True)

    def backward(self, grad):
        a, b, const, spec_da, spec_db = self.saved
        ga = np.einsum(spec_da, const, grad, b, optimize=True)
        gb = np.einsum(spec_db, const, grad, a, optimize=True)
        return (ga, gb, None)


def einsum_tp(
    a: Tensor,
    b: Tensor,
    const: np.ndarray,
    spec_fwd: str,
    spec_da: str,
    spec_db: str,
) -> Tensor:
    """Differentiable ``einsum(spec_fwd, const, a, b)`` with constant ``const``.

    ``spec_da``/``spec_db`` must compute the gradients wrt ``a`` and ``b``
    given operands ``(const, grad, other)``.
    """
    return EinsumTP.apply(a, b, const, spec_fwd=spec_fwd, spec_da=spec_da, spec_db=spec_db)
