"""Reverse-mode autograd over NumPy — the repository's PyTorch substitute."""

from .engine import Function, Tensor, as_tensor, is_grad_enabled, no_grad
from .ops import (
    clip,
    concatenate,
    einsum_tp,
    gather_rows,
    segment_sum,
    stack,
    where,
)
from .functional import (
    l2_norm,
    mse,
    relu,
    sigmoid,
    silu,
    softplus,
    weighted_mse,
)
from .gradcheck import check_gradients, numerical_gradient

__all__ = [
    "Tensor",
    "Function",
    "as_tensor",
    "no_grad",
    "is_grad_enabled",
    "gather_rows",
    "segment_sum",
    "concatenate",
    "stack",
    "where",
    "clip",
    "einsum_tp",
    "silu",
    "relu",
    "sigmoid",
    "softplus",
    "mse",
    "weighted_mse",
    "l2_norm",
    "check_gradients",
    "numerical_gradient",
]
