"""Setuptools shim (offline environments lack the wheel package, so the
legacy editable-install path is kept available)."""

from setuptools import setup

setup()
