"""Benchmark/harness: regenerate Figure 6 (ablation of the optimizations).

Paper reference: load balancer 1.60x/2.20x/3.33x and kernel optimization
1.74x/1.77x/1.67x on the small/medium/large splits.
"""

import pytest

from repro.experiments import figure6


def test_figure6_ablation(benchmark):
    rows = benchmark.pedantic(figure6.run, rounds=1)
    print("\n" + figure6.report(rows))
    by = {r.dataset: r for r in rows}
    # Shape: LB speedup grows with scale, largest on the large split.
    assert by["small"].load_balancer_speedup < by["large"].load_balancer_speedup
    assert by["large"].load_balancer_speedup == pytest.approx(3.33, rel=0.25)
    # Kernel speedup roughly constant ~1.7x.
    for r in rows:
        assert 1.4 < r.kernel_speedup < 2.0
    benchmark.extra_info["lb_speedups"] = [
        round(r.load_balancer_speedup, 2) for r in rows
    ]
    benchmark.extra_info["kernel_speedups"] = [
        round(r.kernel_speedup, 2) for r in rows
    ]
