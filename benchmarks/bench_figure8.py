"""Benchmark/harness: regenerate Figure 8 (strong-scaling speedups).

Paper: the combined optimizations reach roughly 6x over baseline MACE at
740 GPUs, with the load balancer contributing the larger share.
"""

from repro.experiments import figure7


def test_figure8_speedups(benchmark):
    points = benchmark.pedantic(
        figure7.run, kwargs=dict(gpu_counts=(16, 64, 256, 740)), rounds=1
    )
    speedups = {
        (p.config, p.num_gpus): p.speedup_vs_baseline for p in points
    }
    combined = "MACE + load balancer + kernel optimization"
    series = [speedups[(combined, g)] for g in (16, 64, 256, 740)]
    print("\n[figure8] combined speedup vs GPUs:", [round(s, 2) for s in series])
    # Speedup grows with scale and lands near the paper's ~6x at 740.
    assert all(a <= b + 0.2 for a, b in zip(series, series[1:]))
    assert 5.0 < series[-1] < 8.5
    # Load balancer alone beats kernel optimization alone at scale (Fig. 8).
    lb_740 = speedups[("MACE + load balancer", 740)]
    k_740 = speedups[("MACE + kernel optimization", 740)]
    assert lb_740 > k_740
    benchmark.extra_info["combined_speedup_740"] = round(series[-1], 2)
