"""Ablation benchmarks for the design choices DESIGN.md calls out.

1. **Packer choice** — Algorithm 1 vs first-fit-decreasing,
   best-fit-decreasing, and LPT scheduling on the *joint* objective
   (balance AND padding AND bin count), the comparison §3.2 argues.
2. **Size metric** — vertex count vs edge count vs a blend (§3.2.1 notes
   the metric is pluggable).
3. **Bin capacity sweep** — epoch time around the 3072-token operating
   point (§5.5's trade-off).
4. **Kernel-optimization decomposition** — CG sparsity and fusion toggled
   independently in the cost model.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.cluster import A100, PAPER_MODEL, simulate_epoch
from repro.data import build_spec
from repro.distribution import (
    best_fit_decreasing,
    create_balanced_batches,
    evaluate_bins,
    first_fit_decreasing,
    lpt_schedule,
)
from repro.experiments.common import balanced_workloads, format_table


@pytest.fixture(scope="module")
def spec():
    return build_spec(0.05, seed=0)


def test_packer_comparison(benchmark, spec):
    """Algorithm 1 dominates classical heuristics on the joint objective."""
    sizes = spec.n_atoms

    def run_all():
        return {
            "Algorithm 1": create_balanced_batches(sizes, 3072, 64),
            "FFD": first_fit_decreasing(sizes, 3072),
            "BFD": best_fit_decreasing(sizes, 3072),
            "LPT (64 bins)": lpt_schedule(sizes, 64),
        }

    packings = benchmark.pedantic(run_all, rounds=1)
    rows = []
    metrics = {}
    for name, bins in packings.items():
        m = evaluate_bins(bins, sizes)
        metrics[name] = m
        rows.append(
            (
                name,
                m.num_bins,
                f"{m.padding_fraction:.3f}",
                f"{m.load_cv:.4f}",
                f"{m.straggler_ratio:.3f}",
            )
        )
    print(
        "\n[ablation: packers]\n"
        + format_table(["Packer", "Bins", "Padding", "Load CV", "Straggler"], rows)
    )
    alg1 = metrics["Algorithm 1"]
    # Better balanced than both classical bin packers...
    assert alg1.load_cv < metrics["FFD"].load_cv
    assert alg1.load_cv < metrics["BFD"].load_cv
    # ...with near-optimal bin count (within a rounding margin).
    assert alg1.num_bins <= metrics["BFD"].num_bins + 2 * 64
    # LPT balances perfectly but needs giant bins (equal to an epoch/GPU):
    assert metrics["LPT (64 bins)"].num_bins == 64


def test_size_metric_choice(benchmark, spec):
    """§3.2.1: balancing edge counts also balances edges (compute proxy)."""
    from repro.distribution import BalancedDistributedSampler

    def pack(metric):
        sampler = BalancedDistributedSampler(
            spec.n_atoms,
            capacity=3072 if metric == "atoms" else int(spec.n_edges.max()) * 4,
            num_replicas=8,
            shuffle=False,
            size_metric=None if metric == "atoms" else lambda s: spec.n_edges + 1,
        )
        bins = sampler.plan_epoch(0)
        edge_loads = np.array(
            [spec.n_edges[b.items].sum() for b in bins], dtype=float
        )
        return float(edge_loads.std() / edge_loads.mean())

    atom_cv = pack("atoms")
    edge_cv = benchmark.pedantic(pack, args=("edges",), rounds=1)
    print(
        f"\n[ablation: size metric] edge-load CV balancing by atoms: {atom_cv:.3f}, "
        f"by edges: {edge_cv:.3f}"
    )
    assert edge_cv < atom_cv + 0.02  # balancing edges can't hurt edge balance


@pytest.mark.parametrize("capacity", [1024, 2048, 3072, 6144])
def test_capacity_sweep(benchmark, spec, capacity):
    """Epoch time vs bin capacity: small bins waste steps under-saturated,
    huge bins cost memory — 3072 sits in the flat optimum (§5.5)."""

    def run():
        work = balanced_workloads(spec, 64, capacity=capacity)
        return simulate_epoch(work.tokens, work.edges, 64).epoch_time

    t = benchmark.pedantic(run, rounds=1)
    mem = PAPER_MODEL.memory_per_batch(
        np.array([float(capacity)]), np.array([capacity * 25.0])
    )[0]
    print(
        f"\n[ablation: capacity {capacity}] epoch {t/60:.2f} min, "
        f"batch memory {mem/1e9:.1f} GB (ceiling {A100.memory_bytes/1e9:.0f} GB)"
    )


def test_kernel_toggle_decomposition(benchmark):
    """Decompose the kernel speedup: launches (fusion) vs FLOPs (sparsity)."""
    tokens = np.full(200, 3072.0)
    edges = tokens * 25

    def times():
        out = {}
        for variant in ("baseline", "optimized"):
            launches, flops, bytes_ = PAPER_MODEL.step_workload(
                tokens, edges, variant
            )
            out[variant] = dict(
                launches=float(launches[0]),
                flops=float(flops[0]),
                bytes=float(bytes_[0]),
                time=float(
                    PAPER_MODEL.step_times(A100, tokens, edges, variant)[0]
                ),
            )
        return out

    res = benchmark.pedantic(times, rounds=1)
    b, o = res["baseline"], res["optimized"]
    print(
        f"\n[ablation: kernel decomposition] launches {b['launches']:.0f} -> "
        f"{o['launches']:.0f}, flops {b['flops']/1e9:.1f}G -> {o['flops']/1e9:.1f}G, "
        f"bytes {b['bytes']/1e9:.2f}G -> {o['bytes']/1e9:.2f}G, "
        f"time ratio {b['time']/o['time']:.2f}x"
    )
    assert b["launches"] > 5 * o["launches"]
    assert b["flops"] > 1.5 * o["flops"]


def test_randomized_sampler_tradeoff(benchmark, spec):
    """§7 future work: sharded balanced packing restores epoch-to-epoch
    randomness; measure what it costs in balance/padding vs shard size."""
    from repro.distribution import RandomizedBalancedSampler

    def sweep():
        out = {}
        for shard in (1024, 4096, 16384):
            sampler = RandomizedBalancedSampler(
                spec.n_atoms, 3072, 8, shard_size=shard, seed=0
            )
            bins = sampler.plan_epoch(0)
            m = evaluate_bins(bins, spec.n_atoms)
            out[shard] = (m.straggler_ratio, m.padding_fraction)
        return out

    res = benchmark.pedantic(sweep, rounds=1)
    rows = [
        (shard, f"{sr:.4f}", f"{pf:.3f}") for shard, (sr, pf) in res.items()
    ]
    print(
        "\n[ablation: randomized sampler]\n"
        + format_table(["Shard size", "Straggler", "Padding"], rows)
    )
    # Bigger shards -> closer to the deterministic optimum.
    stragglers = [res[s][0] for s in (1024, 4096, 16384)]
    assert stragglers[-1] <= stragglers[0] + 1e-9
    assert all(s < 1.25 for s in stragglers)


def test_failure_injection(benchmark, spec):
    """Heterogeneity ablation: a throttled GPU paces synchronous training
    regardless of batching strategy — but balanced batching keeps the
    *relative* penalty exactly at the slowdown factor, while fixed-count
    batching hides part of it inside existing straggler waste."""
    from repro.experiments.common import fixed_count_workloads

    balanced = balanced_workloads(spec, 8)
    fixed = fixed_count_workloads(spec)

    def run():
        speed = np.ones(8)
        speed[3] = 0.6  # one GPU at 60% clock
        out = {}
        for name, work in (("balanced", balanced), ("fixed", fixed)):
            nominal = simulate_epoch(work.tokens, work.edges, 8).epoch_time
            slowed = simulate_epoch(
                work.tokens, work.edges, 8, rank_speed=speed
            ).epoch_time
            out[name] = slowed / nominal
        return out

    penalties = benchmark.pedantic(run, rounds=1)
    print(
        f"\n[ablation: failure injection] slowdown penalty with one GPU at 60%:"
        f" balanced {penalties['balanced']:.2f}x, fixed-count"
        f" {penalties['fixed']:.2f}x (ideal async would be 1.05x)"
    )
    assert penalties["balanced"] == pytest.approx(1.0 / 0.6, rel=0.05)
    assert penalties["fixed"] < penalties["balanced"]
