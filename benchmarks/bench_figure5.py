"""Benchmark/harness: regenerate Figure 5 (per-system graph statistics)."""

from repro.experiments import figure5


def test_figure5(benchmark):
    stats = benchmark.pedantic(
        figure5.run, kwargs=dict(samples_per_system=15, seed=0), rounds=1
    )
    print("\n" + figure5.report(stats))
    # The paper's qualitative claims: liquid water largest & uniform,
    # MPtrj most size-diverse, sparsity profiles highly diverse.
    lw = stats["Liquid water"]
    assert lw.vertex_counts.min() == lw.vertex_counts.max() == 768
    mp = stats["MPtrj"]
    assert mp.vertex_counts.max() / max(mp.vertex_counts.min(), 1) > 5
    med = sorted(float(h.sparsities.mean()) for h in stats.values())
    assert med[-1] / max(med[0], 1e-9) > 3  # wide sparsity spread
    benchmark.extra_info["systems"] = len(stats)
