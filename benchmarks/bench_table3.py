"""Benchmark/harness: regenerate Table 3 (dataset composition)."""

from repro.experiments import table3


def test_table3(benchmark):
    rows = benchmark.pedantic(table3.run, args=("large",), rounds=1)
    print("\n" + table3.report(rows))
    measured = {r.dataset: r for r in rows}
    for name, (count, _, _) in table3.PAPER_TABLE3.items():
        assert measured[name].num_graphs == count
    benchmark.extra_info["systems"] = len(rows)
