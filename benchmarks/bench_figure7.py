"""Benchmark/harness: regenerate Figure 7 (strong scaling, 2.65 M samples).

Paper headline: per-epoch time of the fully optimized configuration drops
from ~12 minutes (baseline) to ~2 minutes at 740 GPUs; T1 ~ 80 minutes at
16 GPUs; strong-scaling efficiency 86.5%.
"""

import pytest

from repro.experiments import figure7


def test_figure7_strong_scaling(benchmark):
    points = benchmark.pedantic(figure7.run, rounds=1)
    print("\n" + figure7.report(points))
    at = {(p.config, p.num_gpus): p.epoch_minutes for p in points}
    base_740 = at[("MACE", 740)]
    both_740 = at[("MACE + load balancer + kernel optimization", 740)]
    assert base_740 == pytest.approx(12.0, rel=0.35)
    assert both_740 == pytest.approx(2.0, rel=0.35)
    both_16 = at[("MACE + load balancer + kernel optimization", 16)]
    assert both_16 == pytest.approx(80.0, rel=0.35)
    eff = figure7.strong_scaling_efficiency(points)
    assert 75.0 < eff < 105.0  # paper: 86.5%
    benchmark.extra_info["epoch_min_740_baseline"] = round(base_740, 2)
    benchmark.extra_info["epoch_min_740_optimized"] = round(both_740, 2)
    benchmark.extra_info["strong_scaling_efficiency_pct"] = round(eff, 1)
