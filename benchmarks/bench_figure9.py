"""Benchmark/harness: regenerate Figure 9 (training-loss parity).

The paper shows baseline and optimized MACE losses following the same
trajectory over 16 epochs.  Here both variants are really trained (NumPy
autograd); since this repository's kernels are numerically identical the
curves coincide exactly.
"""

from repro.experiments import figure9


def test_figure9_loss_parity(benchmark):
    curves = benchmark.pedantic(
        figure9.run,
        kwargs=dict(n_samples=16, n_epochs=10, channels=8, capacity=128),
        rounds=1,
    )
    print("\n" + figure9.report(curves))
    assert curves.max_divergence < 1e-9
    assert curves.optimized[-1] < 0.5 * curves.optimized[0]
    benchmark.extra_info["final_loss"] = round(curves.optimized[-1], 6)
    benchmark.extra_info["loss_reduction"] = round(
        curves.optimized[0] / curves.optimized[-1], 1
    )
