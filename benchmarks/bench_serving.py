"""Benchmark: the cost-model-driven serving engine under latency SLOs.

Reproduces the paper's load-balancing result in the *serving* regime:
on a heterogeneous bursty/Poisson trace of single-molecule requests,
the cost-model-aware scheduler (balanced bin-packing of the admission
window + roofline-costed placement, ``repro.serving.CostAwareScheduler``)
is compared against round-robin and least-loaded baselines on identical
offered load.  Assertions (both ``--smoke`` and full mode):

1. **Numerics** — with ``execute=True``, every per-request energy out of
   the batched engine matches the unbatched single-graph prediction to
   1e-10 (block-diagonal batching is exact).
2. **Tail latency** — cost-aware achieves *strictly* lower p99 latency
   than round-robin.
3. **Balance** — cost-aware achieves lower per-replica utilization
   imbalance (max/mean busy seconds) than round-robin.
4. **Equal throughput** — both policies complete the whole trace, with
   throughput within 10% of each other (the offered load is identical;
   only batching and placement differ).

Replica timing uses the paper's production-scale cost model
(:data:`~repro.cluster.PAPER_MODEL`) on an A100 re-saturated for
forward-only micro-batch inference; the timing simulation is pure float
arithmetic, so results are deterministic for a given seed.

Run standalone::

    python benchmarks/bench_serving.py           # full comparison grid
    python benchmarks/bench_serving.py --smoke   # quick CI gate
"""

from __future__ import annotations

import argparse
import pathlib
import sys
from dataclasses import replace

import numpy as np

# Allow running from a checkout without installation, from any CWD.
sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.cluster import A100, PAPER_MODEL  # noqa: E402
from repro.experiments.common import format_table  # noqa: E402
from repro.graphs.batch import collate  # noqa: E402
from repro.mace import MACE, MACEConfig  # noqa: E402
from repro.serving import (  # noqa: E402
    InferenceEngine,
    build_request_pool,
    compare_policies,
    generate_trace,
)

# A100 tuned for forward-only inference micro-batches: the fwd+bwd
# saturation point of §5.5 (~800 tokens) over-flattens a forward-only
# pass at serving batch sizes, so the serving device saturates earlier.
SERVING_GPU = replace(A100, saturation_tokens_fp32=64)

_MODEL_CFG = MACEConfig(num_channels=8, lmax_sh=2, l_atomic_basis=2, correlation=2)


def _check_numerics(model: MACE, pool, n_requests: int) -> float:
    """Serve a short trace with real forwards; return the max abs error
    of batched vs unbatched energies."""
    trace = generate_trace(pool, n_requests, rate=2000.0, process="poisson", seed=11)
    engine = InferenceEngine(
        model,
        pool,
        n_replicas=2,
        scheduler="cost-aware",
        max_batch_tokens=192,
        max_wait=5e-3,
        workload_model=PAPER_MODEL,
        gpu=SERVING_GPU,
        execute=True,
    )
    report = engine.serve(trace)
    singles = {
        g_id: float(model.predict_energy(collate([pool[g_id]]))[0])
        for g_id in {r.graph_id for r in report.records}
    }
    return max(abs(rec.energy - singles[rec.graph_id]) for rec in report.records)


def _run_comparison(model: MACE, pool, n_requests: int, rate: float, process: str, seed: int):
    return compare_policies(
        model,
        pool,
        generate_trace(pool, n_requests, rate=rate, process=process, seed=seed),
        n_replicas=4,
        max_batch_tokens=384,
        max_wait=1e-2,
        workload_model=PAPER_MODEL,
        gpu=SERVING_GPU,
        execute=False,
        slo_seconds=0.1,
    )


def _print_table(title: str, reports) -> None:
    print(f"\n{title}")
    rows = []
    for name, r in reports.items():
        lat = r.latency
        rows.append(
            (
                name,
                f"{lat.p50 * 1e3:.2f}",
                f"{lat.p95 * 1e3:.2f}",
                f"{lat.p99 * 1e3:.2f}",
                f"{r.throughput_rps:.0f}",
                f"{r.utilization_imbalance:.3f}",
                r.n_batches,
                f"{r.mean_batch_fill:.1%}",
                f"{r.slo_attainment:.1%}",
            )
        )
    print(
        format_table(
            ["policy", "p50 ms", "p95 ms", "p99 ms", "req/s",
             "imbalance", "batches", "fill", "SLO"],
            rows,
        )
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="single-configuration CI gate (seconds, still asserts)",
    )
    args = parser.parse_args(argv)

    model = MACE(_MODEL_CFG, seed=0)
    pool = build_request_pool(24, seed=3, max_atoms=72)
    print(
        f"pool: {len(pool)} molecules, {min(g.n_atoms for g in pool)}-"
        f"{max(g.n_atoms for g in pool)} atoms "
        f"(heterogeneity x{max(g.n_atoms for g in pool) / min(g.n_atoms for g in pool):.0f})"
    )

    err = _check_numerics(model, pool, n_requests=24 if args.smoke else 60)
    print(f"batched vs unbatched max |dE|: {err:.3e}")
    assert err < 1e-10, f"batched engine numerics drifted: {err:.3e}"

    # The gated configuration: heterogeneous bursty trace at ~85% load.
    n_requests = 400
    reports = _run_comparison(model, pool, n_requests, rate=3000.0, process="bursty", seed=1)
    _print_table("bursty trace, rate 3000 req/s (gated)", reports)

    rr, ca = reports["round-robin"], reports["cost-aware"]
    assert rr.n_requests == n_requests and ca.n_requests == n_requests, (
        "both policies must complete the full trace"
    )
    # Offered load is identical (same trace, same flush logic); equal
    # throughput means cost-aware completes the same requests no slower.
    thr_ratio = ca.throughput_rps / rr.throughput_rps
    assert thr_ratio >= 0.999, (
        f"cost-aware lost throughput: cost-aware/round-robin = {thr_ratio:.3f}"
    )
    assert ca.latency.p99 < rr.latency.p99, (
        f"cost-aware p99 {ca.latency.p99 * 1e3:.2f} ms must beat "
        f"round-robin {rr.latency.p99 * 1e3:.2f} ms"
    )
    assert ca.utilization_imbalance < rr.utilization_imbalance, (
        f"cost-aware imbalance {ca.utilization_imbalance:.3f} must beat "
        f"round-robin {rr.utilization_imbalance:.3f}"
    )
    print(
        f"\ncost-aware vs round-robin: p99 {ca.latency.p99 / rr.latency.p99 - 1.0:+.1%}, "
        f"imbalance {ca.utilization_imbalance:.3f} vs {rr.utilization_imbalance:.3f}, "
        f"throughput ratio {thr_ratio:.3f}"
    )

    # Mixed fleet (satellite of ISSUE 5): half the replicas at half
    # speed.  The cost-aware scheduler predicts each replica's own
    # finish time from its GPUSpec, so the asymmetry is exactly where
    # per-replica costing must beat spec-blind round-robin.
    slow = replace(
        SERVING_GPU,
        name=f"{SERVING_GPU.name}-half",
        sustained_flops=SERVING_GPU.sustained_flops / 2,
        sustained_bandwidth=SERVING_GPU.sustained_bandwidth / 2,
    )
    mixed = compare_policies(
        model,
        pool,
        generate_trace(pool, n_requests, rate=2500.0, process="bursty", seed=5),
        policies=("round-robin", "cost-aware"),
        n_replicas=4,
        gpu=[SERVING_GPU, SERVING_GPU, slow, slow],
        max_batch_tokens=384,
        max_wait=1e-2,
        workload_model=PAPER_MODEL,
        execute=False,
        slo_seconds=0.1,
    )
    _print_table("mixed fleet (2 fast + 2 half-speed), bursty 2500 req/s", mixed)
    rr_m, ca_m = mixed["round-robin"], mixed["cost-aware"]
    assert ca_m.latency.p99 < rr_m.latency.p99, (
        f"cost-aware p99 {ca_m.latency.p99 * 1e3:.2f} ms must beat round-robin "
        f"{rr_m.latency.p99 * 1e3:.2f} ms on the heterogeneous fleet"
    )
    assert ca_m.throughput_rps >= rr_m.throughput_rps * 0.999
    print(
        f"mixed fleet: cost-aware p99 {ca_m.latency.p99 / rr_m.latency.p99 - 1.0:+.1%} "
        f"vs round-robin"
    )

    if not args.smoke:
        for process, rate in (
            ("poisson", 2000.0),
            ("bursty", 2000.0),
            ("diurnal", 2500.0),
        ):
            _print_table(
                f"{process} trace, rate {rate:.0f} req/s",
                _run_comparison(model, pool, 400, rate=rate, process=process, seed=2),
            )

    print("\nbench_serving: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
