"""Benchmark/harness: regenerate Figure 10 (weak scaling)."""

from repro.experiments import figure10


def test_figure10_weak_scaling(benchmark):
    points = benchmark.pedantic(figure10.run, rounds=1)
    print("\n" + figure10.report(points))
    best = "MACE + load balancer + kernel optimization"
    effs = {
        name: figure10.weak_scaling_efficiency(points, name)
        for name, _, _ in figure10.CONFIGS
    }
    # The fully optimized configuration scales flattest (paper's finding).
    for name, e in effs.items():
        if name != best:
            assert abs(1 - effs[best]) <= abs(1 - e) + 0.05
    # Baseline MACE is the slowest at every rung.
    for _, gpus in figure10.WEAK_SETUP:
        at = {p.config: p.epoch_minutes for p in points if p.num_gpus == gpus}
        assert at["MACE"] == max(at.values())
    benchmark.extra_info["weak_efficiency_optimized"] = round(effs[best], 3)
