"""Benchmark: compiled execution plans vs the eager autograd engine.

Gates the ``repro.runtime`` contract (ISSUE 5) on repeated fixed-shape
training steps — the record-once/replay-many regime the runtime exists
for:

1. **Equivalence** — losses, parameter gradients, energies and forces
   from compiled replay match the eager engine to 1e-10 (the compiled
   backward may reassociate gradient accumulation, so agreement is at
   float-reassociation level, orders of magnitude inside the gate).
2. **Speed** — replaying the compiled forward+backward of a training
   step is at least 1.5x faster than the eager tape on the same shape
   buckets (best-of-repeats timing on warmed caches; the plan folds the
   edge-geometry pipeline and strips per-op tape bookkeeping and the
   topological sort).
3. **Fallback** — eager remains the default-correct path: a replay
   guard rejection falls back to eager and produces the same numbers.
4. **Verification cost** — the static plan verifier (``repro.analysis``)
   runs once per cache insertion; it must stay under 10% of the cost of
   building the plan it checks, and must never run on the replay path.
5. **Optimization** (ISSUE 7) — the fused/arena-planned plan must be
   >= 1.3x over the 1:1 (``optimize=False``) replay of the same
   train-step tape, allocation-free in its steady-state forward
   (address-stability counter), and 1e-10-equivalent in loss and
   parameter gradients.  The win is the working set: the 1:1 replay
   mallocs/frees every intermediate each step, while the arena replays
   into the same pinned, donation-recycled buffers.

Timing compares two identical trainers on identical batch sequences:
``plan_cache=None`` (eager tape every step) vs the default plan cache
(capture once per bucket, replay thereafter).  Full-step speedup
(including Adam/EMA) is reported alongside the gated forward+backward
speedup.

Run standalone::

    python benchmarks/bench_runtime.py           # full report
    python benchmarks/bench_runtime.py --smoke   # quick CI gate
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import timeit

import numpy as np

# Allow running from a checkout without installation, from any CWD.
sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.data import attach_labels, build_training_set  # noqa: E402
from repro.graphs.batch import collate  # noqa: E402
from repro.mace import MACE, MACEConfig  # noqa: E402
from repro.runtime import PlanCache  # noqa: E402
from repro.training import Trainer  # noqa: E402

CFG = MACEConfig(num_channels=4, lmax_sh=2, l_atomic_basis=2, correlation=2)
SPEEDUP_GATE = 1.5
OPT_GATE = 1.3
TOL = 1e-10


def _dataset():
    # The mixed 40-atom training regime (same population as the test
    # suite): enough edges that the folded geometry pipeline matters,
    # small enough that per-op tape overhead is still a visible slice.
    # Measured speedup here is typically 1.7-2.2x; the floor under the
    # quietest ambient conditions (when eager's allocation-heavy tape is
    # at its cheapest) sits just above the 1.5x gate, hence the bounded
    # re-measurement attempts below.
    return attach_labels(build_training_set(6, seed=7, max_atoms=40))


def _equivalence(graphs) -> None:
    batches = [[0, 1, 2], [3, 4, 5], [1, 2, 3]] * 3
    eager = Trainer(MACE(CFG, seed=5), graphs, plan_cache=None)
    comp = Trainer(MACE(CFG, seed=5), graphs)
    l_eager = [eager.train_step(b) for b in batches]
    l_comp = [comp.train_step(b) for b in batches]
    d_loss = max(abs(a - b) for a, b in zip(l_eager, l_comp))
    assert d_loss < TOL, f"loss drifted between eager and compiled: {d_loss:.3e}"
    d_param = max(
        np.abs(pa.data - pb.data).max()
        for (_, pa), (_, pb) in zip(
            eager.model.named_parameters(), comp.model.named_parameters()
        )
    )
    assert d_param < TOL, f"weights drifted after compiled training: {d_param:.3e}"

    # Gradient equivalence on a fresh step (params now differ from init,
    # so the replay is exercising re-read parameters, not the capture).
    eager.optimizer.zero_grad()
    comp.optimizer.zero_grad()
    eager._loss_step(eager._collate([0, 1, 2], 0))
    comp._loss_step(comp._collate([0, 1, 2], 0))
    d_grad = max(
        np.abs((pa.grad if pa.grad is not None else 0.0) - (pb.grad if pb.grad is not None else 0.0)).max()
        for (_, pa), (_, pb) in zip(
            eager.model.named_parameters(), comp.model.named_parameters()
        )
    )
    assert d_grad < TOL, f"parameter gradients drifted: {d_grad:.3e}"

    # Energies + forces through the compiled MD path.
    model = MACE(CFG, seed=0)
    batch = collate(graphs[:3])
    cache = PlanCache()
    e_ref, f_ref = model.energy_and_forces(batch)
    model.energy_and_forces(batch, compiled=cache)  # capture
    e_c, f_c = model.energy_and_forces(batch, compiled=cache)  # replay
    d_e = np.abs(e_ref - e_c).max()
    d_f = np.abs(f_ref - f_c).max()
    assert d_e < TOL and d_f < TOL, f"energy/force drift: {d_e:.3e}/{d_f:.3e}"
    print(
        f"[runtime] equivalence: |dloss| {d_loss:.1e}  |dtheta| {d_param:.1e}  "
        f"|dgrad| {d_grad:.1e}  |dE| {d_e:.1e}  |dF| {d_f:.1e}  (gate {TOL:.0e})"
    )


def _fallback(graphs) -> None:
    model = MACE(CFG, seed=1)
    cache = PlanCache()
    batch = collate(graphs[:2])
    model.predict_energy(batch, compiled=cache)
    model.energy_scale.data = model.energy_scale.data.astype(np.float32)
    out = model.predict_energy(batch, compiled=cache)  # guard -> eager
    ref = model.predict_energy(batch)
    assert cache.stale == 1, "replay guard did not fire on dtype drift"
    d = np.abs(out - ref).max()
    assert d < TOL, f"fallback result drifted from eager: {d:.3e}"
    print(f"[runtime] fallback: guard tripped on dtype drift, eager result |dE| {d:.1e}")


def _verification(graphs) -> None:
    from repro.analysis.verifier import verify_plan
    from repro.autograd import Tensor
    from repro.runtime import CompiledPlan, record_tape

    model = MACE(CFG, seed=3)
    batch = collate(graphs[:2])

    def capture():
        # The full insert path a cache miss pays: eager capture pass,
        # eager backward, then lowering the tape to a replay program.
        positions = Tensor(batch.positions.copy(), requires_grad=True)
        with record_tape() as tape:
            energies = model.forward(batch, positions=positions)
            total = energies.sum()
        total.backward()
        return CompiledPlan(
            tape,
            outputs=(energies,),
            seed=total,
            inputs=(positions,),
            grad_params=False,
            owner=model,
        )

    plan = capture()
    # min-of-N floors out scheduler noise on both sides; verify costs
    # ~1 ms a repeat, so the extra repeats are cheap insurance against
    # a load burst landing inside one side's window.
    t_build = min(timeit.repeat(capture, number=1, repeat=7))
    t_verify = min(timeit.repeat(lambda: verify_plan(plan), number=1, repeat=20))
    ratio = t_verify / t_build
    checks = verify_plan(plan)
    print(
        f"[runtime] verifier: {checks['forward_ops']}+{checks['backward_ops']} ops, "
        f"{checks['specs_checked']} specs in {t_verify * 1e3:.2f} ms "
        f"vs {t_build * 1e3:.2f} ms plan build ({ratio:.1%} of build)"
    )
    assert ratio < 0.10, (
        f"verified insert must cost < 10% of plan build, measured {ratio:.1%}"
    )

    # Verification happens once at insertion and never again: replays
    # must not touch the verifier at all.
    cache = PlanCache()
    model.energy_and_forces(batch, compiled=cache)  # capture + verified insert
    assert cache.stats()["verified"] == 1, "insert did not verify the plan"
    for _ in range(5):
        model.energy_and_forces(batch, compiled=cache)
    stats = cache.stats()
    assert stats["verified"] == 1, "verifier ran on the replay path"
    assert stats["hits"] == 5
    print("[runtime] verifier: 1 verified insert, 0 re-verifications over 5 replays")


def _speed(graphs, repeats: int, loops: int, attempts: int) -> None:
    batches = [[0, 1, 2], [3, 4, 5]]
    eager = Trainer(MACE(CFG, seed=0), graphs, plan_cache=None)
    comp = Trainer(MACE(CFG, seed=0), graphs)
    for _ in range(3):  # warm collate caches and capture all plans
        for b in batches:
            eager.train_step(b)
            comp.train_step(b)
    assert comp.plan_cache.captures == len(batches)
    batch_objs = [comp._collate(b, 0) for b in batches]

    def interleaved_min(fn_a, fn_b):
        # Strictly alternate the two measurements and take each side's
        # minimum: load spikes on a shared box only ever *add* time, so
        # the minima converge to the quiet-machine cost of either path.
        best_a = best_b = float("inf")
        for _ in range(repeats):
            best_a = min(best_a, timeit.timeit(fn_a, number=loops))
            best_b = min(best_b, timeit.timeit(fn_b, number=loops))
        scale = loops * len(batches)
        return best_a / scale, best_b / scale

    # Shared CI boxes throttle in multi-second bursts that can depress a
    # whole measurement window on one side; re-measure (bounded) rather
    # than gate on a single window.  A genuine runtime regression fails
    # every attempt — the typical measured speedup is 1.7-2.2x.
    speedup = 0.0
    for attempt in range(attempts):
        t_eager, t_comp = interleaved_min(
            lambda: [eager._loss_step(x) for x in batch_objs],
            lambda: [comp._loss_step(x) for x in batch_objs],
        )
        speedup = t_eager / t_comp
        if speedup >= SPEEDUP_GATE:
            break
        print(
            f"[runtime] attempt {attempt + 1}: {speedup:.2f}x below gate "
            f"(eager {t_eager * 1e3:.2f} ms, replay {t_comp * 1e3:.2f} ms); remeasuring"
        )
    t_full_e, t_full_c = interleaved_min(
        lambda: [eager.train_step(b) for b in batches],
        lambda: [comp.train_step(b) for b in batches],
    )
    n_atoms = batch_objs[0].n_atoms
    print(
        f"[runtime] fixed-shape train step ({n_atoms} atoms/batch, "
        f"{comp.plan_cache.captures} plans): fwd+bwd eager {t_eager * 1e3:.2f} ms "
        f"vs replay {t_comp * 1e3:.2f} ms -> {speedup:.2f}x "
        f"(full step incl. Adam/EMA: {t_full_e / t_full_c:.2f}x)"
    )
    stats = comp.plan_cache.stats()
    print(
        f"[runtime] plan cache: {stats['captures']} captures, {stats['hits']} replays, "
        f"hit rate {stats['hit_rate']:.1%}"
    )
    assert speedup >= SPEEDUP_GATE, (
        f"compiled replay must be >= {SPEEDUP_GATE}x over eager on repeated "
        f"fixed-shape forward+backward, measured {speedup:.2f}x"
    )


def _forward_alloc_probe(plan) -> int:
    """Count forward instructions that allocate a fresh array per replay.

    Runs the plan's forward program twice and compares the data address
    of every instruction's result: arena-backed, donated and view
    results land in the same storage on both passes, so any address
    that changes is a per-replay allocation.  (Plan outputs are
    intentionally excluded from the arena — they must survive the next
    replay — so they are the only legitimate movers.)
    """
    rows = []
    for _ in range(2):
        values = plan._values.copy()
        for slot, param, _, _ in plan._param_specs:
            values[slot] = param.data
        row = []
        for instr in plan._forward:
            args = instr.args
            for position, slot in instr.bindings:
                args[position] = values[slot]
            donor = instr.donor_slot
            if donor is not None:
                result = instr.call(*args, out=values[donor])
            elif instr.out_buffer is not None:
                result = instr.call(*args, out=instr.out_buffer)
            else:
                result = instr.call(*args)
            values[instr.out_slot] = result
            row.append(result.__array_interface__["data"][0])
        rows.append(row)
        plan._release_activations()
    return sum(a != b for a, b in zip(*rows))


def _optimization(graphs, repeats: int, loops: int, attempts: int) -> None:
    from repro.runtime import CompiledPlan, record_tape

    def build(optimize):
        trainer = Trainer(MACE(CFG, seed=0), graphs, plan_cache=None)
        batch = trainer._collate(list(range(len(graphs))), 0)
        with record_tape() as tape:
            loss = trainer._batch_loss(batch)
        loss.backward()
        plan = CompiledPlan(
            tape,
            outputs=(loss,),
            seed=loss,
            grad_params=True,
            optimize=optimize,
            owner=trainer.model,
        )
        return plan, trainer

    opt, tr_opt = build(True)
    oneone, tr_base = build(False)
    assert opt.n_fused_away > 0, "no elementwise chains fused on a train-step plan"
    assert opt.n_donated > 0, "no buffers donated on a train-step plan"
    assert opt.n_alloc_instrs == 0, (
        f"optimized train-step forward still allocates: "
        f"{opt.n_alloc_instrs} instructions outside the arena"
    )

    # Steady state, then equivalence: same params, same constants — the
    # fused/donating plan must reproduce the 1:1 plan exactly.
    for _ in range(3):
        opt.replay()
        oneone.replay()
    (l_opt,), _ = opt.replay()
    (l_one,), _ = oneone.replay()
    d_loss = abs(float(l_opt) - float(l_one))
    d_grad = max(
        np.abs(pa.grad - pb.grad).max()
        for pa, pb in zip(tr_opt.model.parameters(), tr_base.model.parameters())
        if pa.grad is not None
    )
    assert d_loss < TOL and d_grad < TOL, (
        f"optimized plan drifted from 1:1 replay: |dloss| {d_loss:.3e}, "
        f"|dgrad| {d_grad:.3e}"
    )

    # Allocation counter: per-replay fresh allocations in the forward
    # program, measured by address stability across two replays.
    fresh_opt = _forward_alloc_probe(opt)
    fresh_one = _forward_alloc_probe(oneone)
    allowed = len(opt._output_slots)
    assert fresh_opt <= allowed, (
        f"steady-state optimized replay must be allocation-free outside "
        f"its {allowed} outputs, measured {fresh_opt} fresh arrays"
    )

    def interleaved_min(fn_a, fn_b):
        best_a = best_b = float("inf")
        for _ in range(repeats):
            best_a = min(best_a, timeit.timeit(fn_a, number=loops))
            best_b = min(best_b, timeit.timeit(fn_b, number=loops))
        return best_a / loops, best_b / loops

    # Same bounded re-measurement discipline as _speed: shared boxes
    # throttle in bursts; a genuine regression fails every attempt.
    ratio = 0.0
    for attempt in range(attempts):
        t_one, t_opt = interleaved_min(
            lambda: oneone.replay(), lambda: opt.replay()
        )
        ratio = t_one / t_opt
        if ratio >= OPT_GATE:
            break
        print(
            f"[runtime] attempt {attempt + 1}: {ratio:.2f}x below opt gate "
            f"(1:1 {t_one * 1e3:.2f} ms, optimized {t_opt * 1e3:.2f} ms); remeasuring"
        )
    print(
        f"[runtime] optimization: {opt.n_fused_away} ops fused away, "
        f"{opt.n_donated} donations, {opt.n_alloc_instrs} allocating instrs "
        f"({fresh_opt} fresh arrays/replay vs {fresh_one} on 1:1); "
        f"1:1 {t_one * 1e3:.2f} ms vs optimized {t_opt * 1e3:.2f} ms -> {ratio:.2f}x"
    )
    assert ratio >= OPT_GATE, (
        f"optimized replay must be >= {OPT_GATE}x over 1:1 replay on a "
        f"fixed-shape train step, measured {ratio:.2f}x"
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="quick CI gate (seconds, still asserts)",
    )
    args = parser.parse_args(argv)
    graphs = _dataset()
    _equivalence(graphs)
    _fallback(graphs)
    _verification(graphs)
    if args.smoke:
        _speed(graphs, repeats=5, loops=3, attempts=3)
        _optimization(graphs, repeats=6, loops=3, attempts=4)
    else:
        _speed(graphs, repeats=10, loops=10, attempts=2)
        _optimization(graphs, repeats=12, loops=8, attempts=3)
    print("bench_runtime: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
