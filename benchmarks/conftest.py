"""Benchmark-suite configuration.

Heavy experiment benchmarks run with ``benchmark.pedantic(rounds=1)`` —
they are *regeneration harnesses* whose printed tables are the artifact,
with the timing a secondary signal.  Microbenchmarks (kernels, bin
packing) use normal multi-round timing.
"""

import numpy as np
import pytest


@pytest.fixture
def rng():
    return np.random.default_rng(0)
