"""Benchmark/harness: regenerate Figure 11 (bin-capacity bounds, §5.5).

Paper: with Float64, compute saturates around 400 tokens (800 for Float32)
and memory caps bins around ~2000 tokens (~4000 for Float32); for small
clusters execution time is flat in batch size until saturation while big
clusters scale linearly from the start.
"""

import pytest

from repro.experiments import figure11


def test_figure11_capacity_sweep(benchmark):
    points = benchmark.pedantic(figure11.run, kwargs=dict(dtype_bytes=8), rounds=1)
    print("\n" + figure11.report(points))
    small = {p.batch_size: p.time_seconds for p in points if p.cluster == "small"}
    big = {p.batch_size: p.time_seconds for p in points if p.cluster == "big"}
    # Small clusters: flat until ~400 tokens (batch 10), then growing.
    assert small[10] < 1.6 * small[1]
    assert small[50] > 3.0 * small[1]
    # Big clusters: doubling batch size doubles time (paper's observation).
    assert big[10] / big[5] == pytest.approx(2.0, rel=0.2)
    # Memory ceilings in the paper's ranges.
    c64 = figure11.memory_ceiling_tokens(8)
    c32 = figure11.memory_ceiling_tokens(4)
    assert 1400 <= c64 <= 2800
    assert 2800 <= c32 <= 5600
    benchmark.extra_info["memory_ceiling_fp64"] = c64
    benchmark.extra_info["memory_ceiling_fp32"] = c32
