"""Benchmark: Algorithm 1 packing throughput (§3.2.2).

The paper claims ~1 second to prepare ~100 k batches from ~1 M molecular
graph samples on one CPU.  This benchmark times exactly that workload on
the composite dataset distribution.
"""

import numpy as np
import pytest

from repro.data import build_spec
from repro.distribution import create_balanced_batches, evaluate_bins

CAPACITY = 3072


@pytest.fixture(scope="module")
def million_sizes():
    spec = build_spec("large", seed=0)
    return spec.n_atoms[:1_000_000]


def test_pack_one_million_samples(benchmark, million_sizes):
    """§3.2.2: ~1 M samples -> ~10^5 bins in about one second."""
    bins = benchmark.pedantic(
        create_balanced_batches, args=(million_sizes, CAPACITY, 64), rounds=3
    )
    m = evaluate_bins(bins, million_sizes)
    benchmark.extra_info["num_bins"] = m.num_bins
    benchmark.extra_info["padding_fraction"] = round(m.padding_fraction, 5)
    benchmark.extra_info["load_cv"] = round(m.load_cv, 5)
    print(
        f"\n[binpack] 1M samples -> {m.num_bins} bins, "
        f"padding {m.padding_fraction:.2%}, load CV {m.load_cv:.4f} "
        f"(paper: ~100k batches in ~1 s)"
    )
    assert m.num_bins % 64 == 0


def test_pack_100k_samples(benchmark, million_sizes):
    """Packing rate at the 100 k-sample scale (sub-100 ms)."""
    sizes = million_sizes[:100_000]
    bins = benchmark(create_balanced_batches, sizes, CAPACITY, 8)
    assert len(bins) > 0


@pytest.mark.parametrize("gpus", [8, 64, 740])
def test_pack_scaling_with_gpu_count(benchmark, million_sizes, gpus):
    """Packing cost is insensitive to the GPU count (only rounding changes)."""
    sizes = million_sizes[:200_000]
    bins = benchmark.pedantic(
        create_balanced_batches, args=(sizes, CAPACITY, gpus), rounds=2
    )
    assert len(bins) % gpus == 0
