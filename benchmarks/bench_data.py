"""Benchmark: the streaming out-of-core data pipeline.

Two measurements, each gating an acceptance criterion of the
``repro.data.store`` subsystem:

1. **Streamed vs in-memory training** — the same epoch plan trained
   twice from identically generated corpora: once with graphs resident
   in memory, once streamed from a sharded mmap dataset through the
   double-buffered background prefetcher.  Gates: the per-epoch loss
   lists are byte-identical (``==`` on Python floats, no tolerance) and
   warmed streamed throughput is >= 0.9x in-memory.  Also checks the
   compiled-plan cache stops missing after the warm epoch and the
   resident shard budget holds.
2. **Payload-free epoch planning** — the whole planning stack (size
   index load, balanced sampler, per-epoch bins, per-rank shard
   schedules) runs from a directory holding *only* ``index.json`` +
   ``sizes.npz``, with every shard payload file deleted; on the real
   dataset the payload-read and map counters stay at zero through
   planning.  Planning cost is timed across index sizes to show it
   scales with the index, not payload bytes.

Run standalone::

    python benchmarks/bench_data.py          # full workload
    python benchmarks/bench_data.py --smoke  # quick CI smoke pass

Both modes enforce the gates — determinism and counter checks are not
timing-sensitive, and the throughput ratio uses best-of-epoch times to
stay robust on the small smoke workload.
"""

from __future__ import annotations

import argparse
import pathlib
import shutil
import sys
import tempfile
import time

import numpy as np

# Allow running from a checkout without installation, from any CWD.
sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.data import (  # noqa: E402
    ReferencePotential,
    ShardedDataset,
    attach_labels,
    build_training_set,
    load_size_index,
    pack_training_set,
)
from repro.distribution import BalancedDistributedSampler  # noqa: E402
from repro.mace import MACE, MACEConfig  # noqa: E402
from repro.training import Trainer  # noqa: E402

CUTOFF = 4.5


def bench_streamed_training(
    root: pathlib.Path,
    n_samples: int,
    shard_size: int,
    capacity: int,
    n_epochs: int,
    channels: int,
    resident_shards: int,
) -> list:
    """Train the same plan in-memory and streamed; return failures."""
    failures = []
    # Identical corpora: pack_training_set runs the same deterministic
    # generator + batch labeling the in-memory path uses below.
    ds = pack_training_set(
        root / "ds",
        n_samples,
        seed=0,
        cutoff=CUTOFF,
        max_atoms=40,
        shard_size=shard_size,
        resident_shards=resident_shards,
    )
    graphs = attach_labels(
        build_training_set(n_samples, seed=0, cutoff=CUTOFF, max_atoms=40),
        ReferencePotential(cutoff=CUTOFF),
        batch=True,
    )

    cfg = MACEConfig(
        num_channels=channels, lmax_sh=2, l_atomic_basis=2, correlation=2
    )
    trainer_mem = Trainer(MACE(cfg, seed=0), graphs)
    trainer_str = Trainer(MACE(cfg, seed=0), dataset=ds)
    if (trainer_mem.scaler.mean_per_atom, trainer_mem.scaler.std_per_atom) != (
        trainer_str.scaler.mean_per_atom,
        trainer_str.scaler.std_per_atom,
    ):
        failures.append("index-fitted scaler differs from in-memory fit")

    # One shard-aware plan drives both trainers (shuffle off, so every
    # epoch replays the same bins — worst case for streaming overhead:
    # all collates are cache hits, leaving nothing to overlap but the
    # hits themselves).
    sampler = ds.sampler(capacity, shuffle=False)
    epoch_bins = [sampler.plan_rank_bins(epoch, 0) for epoch in range(n_epochs)]

    times_mem, times_str = [], []
    misses_after_warm = None
    for epoch, bins in enumerate(epoch_bins):
        t0 = time.perf_counter()
        losses_mem = trainer_mem.train_epoch_bins(bins, stream=False)
        t1 = time.perf_counter()
        losses_str = trainer_str.train_epoch_bins(bins)
        t2 = time.perf_counter()
        trainer_mem.scheduler.step()
        trainer_str.scheduler.step()
        if losses_mem != losses_str:
            failures.append(f"epoch {epoch}: streamed losses != in-memory losses")
        if epoch == 0:
            misses_after_warm = trainer_str.plan_cache.misses
        else:
            times_mem.append(t1 - t0)
            times_str.append(t2 - t1)
        print(
            f"[stream]     epoch {epoch}: {len(bins)} batches, "
            f"loss {float(np.mean(losses_str)):.5f}, "
            f"mem {(t1 - t0) * 1e3:7.1f} ms  streamed {(t2 - t1) * 1e3:7.1f} ms"
            + ("  (warm-up)" if epoch == 0 else "")
        )

    ratio = min(times_mem) / min(times_str)
    stats = trainer_str.stream_stats
    print(
        f"[stream]     warmed throughput: streamed = {ratio:.2f}x in-memory "
        f"(gate >= 0.90); prefetch depth mean {stats.mean_depth:.2f}, "
        f"{stats.stalls}/{stats.batches} stalls "
        f"({stats.stall_seconds * 1e3:.1f} ms waiting)"
    )
    print(
        f"[stream]     shard maps: {ds.maps_opened} opened, "
        f"{ds.open_maps} resident (budget {resident_shards}), "
        f"{ds.payload_reads} payload reads"
    )
    if ratio < 0.90:
        failures.append(f"streamed throughput {ratio:.2f}x below the 0.9x gate")
    if trainer_str.plan_cache.misses != misses_after_warm:
        failures.append(
            "compiled-plan cache kept missing after the warm epoch "
            f"({misses_after_warm} -> {trainer_str.plan_cache.misses}): "
            "streamed batch shapes are not plan-stable"
        )
    if ds.open_maps > resident_shards:
        failures.append(
            f"{ds.open_maps} shard maps resident, budget {resident_shards}"
        )
    ds.close()
    return failures


def bench_payload_free_planning(
    root: pathlib.Path, n_samples: int, shard_size: int, capacity: int
) -> list:
    """Plan epochs with payloads deleted; time planning vs index size."""
    failures = []
    ds_path = root / "ds"  # packed by bench_streamed_training

    # 1. The real dataset: full planning pass, counters must stay zero.
    ds = ShardedDataset(ds_path, resident_shards=2)
    sampler = ds.sampler(capacity, num_replicas=2, seed=1)
    for epoch in range(3):
        sampler.all_rank_bins(epoch)
        for rank in range(2):
            sampler.plan_rank_shards(epoch, rank)
    if ds.payload_reads or ds.maps_opened:
        failures.append(
            f"epoch planning touched payloads ({ds.payload_reads} reads, "
            f"{ds.maps_opened} maps opened)"
        )
    ds.close()

    # 2. Index-only directory: every shard payload file deleted.
    index_only = root / "index-only"
    index_only.mkdir()
    for name in ("index.json", "sizes.npz"):
        shutil.copy(ds_path / name, index_only / name)
    index = load_size_index(index_only)
    sampler = BalancedDistributedSampler(
        index.n_atoms,
        capacity,
        num_replicas=2,
        seed=1,
        shard_ids=index.shard_id,
    )
    bins = sampler.all_rank_bins(0)
    shards = sampler.plan_rank_shards(0, 0)
    n_bins = sum(len(rank) for rank in bins)
    print(
        f"[planning]   index-only dir (payloads deleted): {index.n_samples} "
        f"structures -> {n_bins} bins, rank 0 walks shards {shards}"
    )
    if not n_bins or not shards:
        failures.append("index-only planning produced an empty plan")

    # 3. Planning cost scales with the index: time the full planning
    # pass at 1x and 8x index size (synthetic sizes, no payloads at all).
    rng = np.random.default_rng(0)
    timings = []
    for mult in (1, 8):
        n = n_samples * mult
        sizes = rng.integers(3, 40, n)
        shard_ids = np.arange(n) // shard_size
        s = BalancedDistributedSampler(
            sizes, capacity, num_replicas=2, seed=1, shard_ids=shard_ids
        )
        best = float("inf")
        for _ in range(3):
            t0 = time.perf_counter()
            s.all_rank_bins(0)
            s.plan_rank_shards(0, 0)
            best = min(best, time.perf_counter() - t0)
        timings.append(best)
        print(
            f"[planning]   {n:6d}-structure index: full epoch plan in "
            f"{best * 1e3:7.2f} ms"
        )
    print(
        f"[planning]   8x index -> {timings[1] / timings[0]:.1f}x planning "
        "time (payload bytes never enter)"
    )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true", help="small fast workload for CI"
    )
    args = parser.parse_args(argv)

    if args.smoke:
        n_samples, shard_size, capacity, n_epochs, channels = 32, 8, 128, 4, 8
    else:
        n_samples, shard_size, capacity, n_epochs, channels = 96, 16, 192, 4, 8

    failures = []
    with tempfile.TemporaryDirectory(prefix="bench-data-") as tmp:
        root = pathlib.Path(tmp)
        failures += bench_streamed_training(
            root, n_samples, shard_size, capacity, n_epochs, channels,
            resident_shards=2,
        )
        failures += bench_payload_free_planning(
            root, n_samples, shard_size, capacity
        )

    for f in failures:
        print(f"FAIL: {f}")
    print("data benchmark:", "OK" if not failures else "FAILED")
    return 0 if not failures else 1


if __name__ == "__main__":
    sys.exit(main())
