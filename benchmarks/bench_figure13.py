"""Benchmark/harness: regenerate Figure 13 (comp/comm profiles).

Paper: baseline MACE computes only 29-70% of the time (the rest is blocking
communication/waiting); the optimized configuration computes 92-95% with
~1.3% exposed communication.
"""

import numpy as np

from repro.experiments import figure13


def test_figure13_profiles(benchmark):
    pair = benchmark.pedantic(figure13.run, kwargs=dict(scale=0.01), rounds=1)
    print("\n" + figure13.report(pair))
    base_comp = np.array([p.computation_pct for p in pair.baseline])
    opt_comp = np.array([p.computation_pct for p in pair.optimized])
    assert base_comp.max() < 80.0
    assert opt_comp.min() > 90.0
    opt_comm = np.array([p.communication_pct for p in pair.optimized])
    assert opt_comm.max() < 8.0  # paper: ~1.3% comm + ~3-6% overlap
    benchmark.extra_info["baseline_comp_pct"] = round(float(base_comp.mean()), 1)
    benchmark.extra_info["optimized_comp_pct"] = round(float(opt_comp.mean()), 1)
