"""Benchmark: the vectorized neighbor-list -> batch pipeline.

Three measurements, each tied to an acceptance criterion of the pipeline
subsystem:

1. **Cell-list construction** — the vectorized sort-by-bin /
   ``searchsorted`` implementation against the seed's per-bucket Python
   loops (kept below as ``_legacy_grid_periodic`` for comparison) on a
   >= 1000-atom periodic system.  Target: >= 5x speedup, identical edge
   set.
2. **Verlet-skin MD rebuilds** — neighbor-list rebuild count along a
   thermal random-walk trajectory with a :class:`NeighborListCache`
   versus the rebuild-every-step baseline.
3. **Collate cache** — epoch re-collation time with a
   :class:`CollateCache` versus collating every bin from scratch.

Run standalone::

    python benchmarks/bench_pipeline.py          # full (asserts targets)
    python benchmarks/bench_pipeline.py --smoke  # quick CI smoke pass

``--smoke`` shrinks the workload so the whole script finishes in a few
seconds; speedup targets are reported but not enforced (timings on tiny
systems are noise-dominated).
"""

from __future__ import annotations

import argparse
import itertools
import pathlib
import sys
import time

import numpy as np

# Allow running from a checkout without installation, from any CWD.
sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.cluster.workload import PAPER_MODEL  # noqa: E402
from repro.distribution import BalancedDistributedSampler  # noqa: E402
from repro.graphs import (  # noqa: E402
    CollateCache,
    MolecularGraph,
    NeighborListCache,
    build_neighbor_list,
)
from repro.graphs.neighborlist import (  # noqa: E402
    _cell_widths,
    _grid_periodic,
)


def _legacy_grid_periodic(pos, cutoff, cell):
    """The seed's per-bucket periodic grid search (pre-vectorization),
    kept verbatim as the benchmark baseline."""
    inv = np.linalg.inv(cell)
    frac = (pos @ inv) % 1.0
    nbins = np.maximum((_cell_widths(cell) // cutoff).astype(int), 1)
    coords = np.minimum((frac * nbins).astype(np.int64), nbins - 1)
    buckets: dict = {}
    for idx in range(pos.shape[0]):
        buckets.setdefault(tuple(coords[idx]), []).append(idx)
    offsets = np.array(list(itertools.product((-1, 0, 1), repeat=3)))
    senders, receivers, shifts = [], [], []
    cut2 = cutoff * cutoff
    for key, members in buckets.items():
        mem = np.asarray(members)
        base = np.asarray(key)
        for off in offsets:
            raw = base + off
            wrap = np.floor_divide(raw, nbins)
            other = buckets.get(tuple(raw - wrap * nbins))
            if not other:
                continue
            cand = np.asarray(other)
            shift = wrap @ cell
            delta = (pos[cand] + shift)[None, :, :] - pos[mem][:, None, :]
            dist2 = np.einsum("ijk,ijk->ij", delta, delta)
            ii, jj = np.nonzero(dist2 <= cut2)
            same = (mem[ii] == cand[jj]) & np.all(wrap == 0)
            keep = ~same
            senders.append(cand[jj][keep])
            receivers.append(mem[ii][keep])
            shifts.append(np.broadcast_to(shift, (int(keep.sum()), 3)))
    edge_index = np.stack(
        [np.concatenate(senders), np.concatenate(receivers)]
    ).astype(np.int64)
    return edge_index, np.concatenate(shifts, axis=0)


def _best_of(fn, repeats):
    best, result = float("inf"), None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def bench_cell_list(n_atoms: int, repeats: int) -> float:
    """Legacy per-bucket vs vectorized cell list; returns the speedup."""
    rng = np.random.default_rng(0)
    cutoff = 4.5
    # Liquid-like density ~0.05 atoms/A^3 in a cubic periodic box.
    width = (n_atoms / 0.05) ** (1.0 / 3.0)
    cell = np.eye(3) * width
    pos = rng.uniform(0.0, 1.0, (n_atoms, 3)) @ cell

    t_legacy, (ei_l, es_l) = _best_of(
        lambda: _legacy_grid_periodic(pos, cutoff, cell), repeats
    )
    t_vec, (ei_v, es_v) = _best_of(
        lambda: _grid_periodic(pos, cutoff, cell), repeats
    )

    def edge_set(ei, es):
        return set(zip(ei[0].tolist(), ei[1].tolist(), map(tuple, np.round(es, 6))))

    assert edge_set(ei_l, es_l) == edge_set(ei_v, es_v), "edge sets differ!"
    speedup = t_legacy / t_vec
    print(
        f"[cell list]  {n_atoms} atoms periodic, {ei_v.shape[1]} edges: "
        f"legacy {t_legacy * 1e3:8.1f} ms  vectorized {t_vec * 1e3:8.1f} ms  "
        f"-> {speedup:5.1f}x"
    )
    return speedup


def bench_verlet_skin(n_atoms: int, n_steps: int) -> int:
    """Neighbor-list rebuild count along a random-walk trajectory."""
    rng = np.random.default_rng(1)
    width = (n_atoms / 0.05) ** (1.0 / 3.0)
    cell = np.eye(3) * width
    g = MolecularGraph(
        rng.uniform(0.0, 1.0, (n_atoms, 3)) @ cell,
        np.full(n_atoms, 8),
        cell=cell,
        pbc=True,
    )
    cache = NeighborListCache(cutoff=4.5, skin=0.6)

    t0 = time.perf_counter()
    for _ in range(n_steps):
        g.positions += rng.normal(0.0, 0.02, g.positions.shape)  # ~MD step
        cache.update(g)
    t_cached = time.perf_counter() - t0

    g.positions = rng.uniform(0.0, 1.0, (n_atoms, 3)) @ cell
    t0 = time.perf_counter()
    for _ in range(n_steps):
        g.positions += rng.normal(0.0, 0.02, g.positions.shape)
        build_neighbor_list(g, cutoff=4.5)
    t_naive = time.perf_counter() - t0

    print(
        f"[verlet]     {n_steps} MD steps, {n_atoms} atoms: "
        f"{cache.rebuilds}/{n_steps} rebuilds "
        f"(reuse {cache.reuse_fraction:.0%}); "
        f"every-step {t_naive * 1e3:7.1f} ms vs cached {t_cached * 1e3:7.1f} ms"
    )
    return cache.rebuilds


def bench_collate_cache(n_graphs: int, n_epochs: int) -> float:
    """Epoch materialization with and without the collate cache."""
    rng = np.random.default_rng(2)
    graphs = []
    for _ in range(n_graphs):
        n = int(rng.integers(8, 40))
        g = MolecularGraph(rng.uniform(0.0, 8.0, (n, 3)), np.full(n, 8))
        build_neighbor_list(g, cutoff=3.0)
        graphs.append(g)
    sampler = BalancedDistributedSampler(
        [g.n_atoms for g in graphs], capacity=128, num_replicas=1, shuffle=False
    )

    t0 = time.perf_counter()
    for epoch in range(n_epochs):
        sampler.rank_graph_batches(epoch, 0, graphs)
    t_cold = time.perf_counter() - t0

    cache = CollateCache()
    t0 = time.perf_counter()
    for epoch in range(n_epochs):
        batches = sampler.rank_graph_batches(epoch, 0, graphs, cache=cache)
    t_warm = time.perf_counter() - t0

    stats = cache.stats()
    speedup = t_cold / max(t_warm, 1e-9)
    pad = float(np.mean([b.padding_fraction for b in batches]))
    print(
        f"[collate]    {n_graphs} graphs x {n_epochs} epochs: "
        f"uncached {t_cold * 1e3:7.1f} ms  cached {t_warm * 1e3:7.1f} ms "
        f"-> {speedup:4.1f}x (hit rate {stats['hit_rate']:.0%}, "
        f"padding {pad:.1%})"
    )
    model = PAPER_MODEL.host_collate_seconds(
        np.full(len(batches), 3072.0), np.full(len(batches), 90000.0),
        cache_hit_rate=stats["hit_rate"],
    )
    print(
        f"[collate]    analytical host model at paper scale: "
        f"{model.sum() * 1e3:.2f} ms/epoch at hit rate {stats['hit_rate']:.0%}"
    )
    return speedup


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small fast workload; report but do not enforce speedup targets",
    )
    parser.add_argument("--atoms", type=int, default=None, help="periodic system size")
    args = parser.parse_args(argv)

    if args.smoke:
        n_atoms = args.atoms or 300
        repeats, n_steps, n_graphs, n_epochs = 1, 20, 100, 3
    else:
        n_atoms = args.atoms or 2000
        repeats, n_steps, n_graphs, n_epochs = 3, 100, 800, 5
    if n_atoms < 1000 and not args.smoke:
        parser.error("full mode needs >= 1000 atoms for a meaningful target")

    speedup = bench_cell_list(n_atoms, repeats)
    rebuilds = bench_verlet_skin(min(n_atoms, 500), n_steps)
    bench_collate_cache(n_graphs, n_epochs)

    ok = True
    if rebuilds >= n_steps:
        print("FAIL: Verlet skin cache did not reduce rebuild count")
        ok = False
    if not args.smoke and speedup < 5.0:
        print(f"FAIL: cell-list speedup {speedup:.1f}x below the 5x target")
        ok = False
    print("pipeline benchmark:", "OK" if ok else "FAILED")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
