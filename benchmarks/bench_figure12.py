"""Benchmark/harness: regenerate Figure 12 (workload distribution snapshot).

Paper: with fixed-count batching the per-GPU token loads vary wildly and
the epoch is paced by GPU 3's straggler batch; with the load balancer all
8 GPUs receive equal token counts and more graphs fit per step.
"""

from repro.experiments import figure12


def test_figure12_distribution(benchmark):
    snap = benchmark.pedantic(figure12.run, rounds=1)
    print("\n" + figure12.report(snap))
    assert snap.balanced_straggler < 1.01
    assert snap.fixed_straggler > 1.3
    assert snap.balanced_graphs.sum() > snap.fixed_graphs.sum()
    benchmark.extra_info["fixed_straggler"] = round(snap.fixed_straggler, 2)
    benchmark.extra_info["balanced_straggler"] = round(snap.balanced_straggler, 4)
