"""Benchmark: real multicore execution validating the analytical cost model.

Everything else in this repo *simulates* replica and rank timing with the
roofline cost model; :mod:`repro.parallel` actually runs the work on OS
threads or forked processes.  This bench closes the loop between the two
worlds.  Gates (both ``--smoke`` and full mode):

1. **Wire format** — a captured zero-input energy plan survives a pickle
   round trip (the worker-pool broadcast format) and replays bitwise-
   stable, within 1e-12 of the original.
2. **Numerics** — ``mode="wall-clock"`` serving returns the *identical
   virtual schedule* as ``mode="simulate"`` and per-request energies
   within 1e-12, on both the thread and process backends.
3. **DDP equivalence** — :class:`repro.training.DistributedTrainingRun`
   with a real executor matches the serial trainer's epoch losses to
   1e-12 (fixed-rank-order gradient fold), while recording measured
   wall seconds per epoch.
4. **Cost model calibration** — on a *warmed* second serve (plans
   captured, workers hot) the per-batch shape error of the cost model
   (p90 of relative error after dividing out the global scale factor)
   stays inside the stated band.
5. **Scaling** — measured throughput at 4 process workers is at least
   2.5x the 1-worker throughput on a CPU-bound trace.  Only gated when
   the machine actually exposes >= 4 cores (``os.sched_getaffinity``);
   otherwise the check is printed as skipped.

Run standalone::

    python benchmarks/bench_parallel.py           # full grid
    python benchmarks/bench_parallel.py --smoke   # quick CI gate
"""

from __future__ import annotations

import argparse
import os
import pathlib
import pickle
import sys

import numpy as np

# Allow running from a checkout without installation, from any CWD.
sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.data import attach_labels, build_training_set  # noqa: E402
from repro.distribution import BalancedDistributedSampler  # noqa: E402
from repro.experiments.common import format_table  # noqa: E402
from repro.graphs.batch import collate  # noqa: E402
from repro.mace import MACE, MACEConfig  # noqa: E402
from repro.parallel import available_cores  # noqa: E402
from repro.runtime import PlanCache  # noqa: E402
from repro.serving import InferenceEngine, build_request_pool, generate_trace  # noqa: E402
from repro.training import DistributedTrainingRun, Trainer  # noqa: E402

_MODEL_CFG = MACEConfig(num_channels=8, lmax_sh=2, l_atomic_basis=2, correlation=2)

# Shape-error bands for gate 4.  With millisecond batches the OS
# scheduler sets the noise floor, and it roughly doubles again when the
# workers are oversubscribed onto fewer cores than the pool size; the
# bands sit ~3x above the warm p90s observed in each regime so the gate
# catches a *systematically* wrong model, not jitter.
SHAPE_ERROR_BAND = 2.0
SHAPE_ERROR_BAND_OVERSUBSCRIBED = 4.0


def _check_pickle(model: MACE) -> None:
    graphs = build_request_pool(2, seed=7, max_atoms=40)
    batch = collate(graphs)
    cache = PlanCache()
    eager = model.predict_energy(batch, compiled=cache)
    plan = model.energy_plan(batch, compiled=cache)
    assert plan is not None, "energy plan was not captured"
    clone = pickle.loads(pickle.dumps(plan))
    (replayed,), _ = clone.replay()
    np.testing.assert_allclose(replayed, eager, atol=1e-12)
    (again,), _ = clone.replay()
    np.testing.assert_array_equal(again, replayed)
    print(f"plan pickle round trip: {len(pickle.dumps(plan))} bytes, replay exact")


def _wall_clock_reports(pool, trace, backends, n_workers: int):
    """Serve the trace in simulate mode and wall-clock mode per backend.

    Each wall-clock engine serves three times: once cold (plan capture
    and broadcast) and twice warm.  Calibration gates run on the warm
    serve with the lower shape error — a single warm serve is hostage to
    one unlucky scheduler preemption on small machines.
    """
    sim = InferenceEngine(
        MACE(_MODEL_CFG, seed=0), pool, n_replicas=2, max_batch_tokens=128
    ).serve(trace)
    warm = {}
    for backend in backends:
        with InferenceEngine(
            MACE(_MODEL_CFG, seed=0),
            pool,
            n_replicas=2,
            max_batch_tokens=128,
            mode="wall-clock",
            backend=backend,
            n_workers=n_workers,
        ) as eng:
            eng.serve(trace)  # cold: captures + broadcasts plans
            reps = [eng.serve(trace), eng.serve(trace)]
            warm[backend] = min(
                reps, key=lambda r: r.cost_model_p90_error or float("inf")
            )
    return sim, warm


def _check_numerics(sim, warm) -> None:
    e_sim = np.array([r.energy for r in sim.records])
    for backend, rep in warm.items():
        assert [(r.req_id, r.batch_id) for r in rep.records] == [
            (r.req_id, r.batch_id) for r in sim.records
        ], f"{backend}: wall-clock changed the virtual schedule"
        e_wall = np.array([r.energy for r in rep.records])
        err = float(np.max(np.abs(e_wall - e_sim)))
        assert err < 1e-12, f"{backend}: wall-clock energies drifted: {err:.3e}"
        print(f"wall-clock[{backend}] vs simulate: max |dE| = {err:.3e}")


def _print_calibration(warm) -> None:
    rows = []
    for backend, rep in warm.items():
        rows.append(
            (
                backend,
                rep.n_workers,
                f"{rep.measured_makespan * 1e3:.1f}",
                f"{rep.measured_throughput_rps:.0f}",
                f"{rep.cost_model_scale:.2f}x",
                f"{rep.cost_model_p90_error:.0%}",
                f"{rep.capture_seconds * 1e3:.1f}",
            )
        )
    print("\nwarm wall-clock serves (trace identical to simulate mode)")
    print(
        format_table(
            ["backend", "workers", "makespan ms", "req/s",
             "scale", "p90 shape err", "capture ms"],
            rows,
        )
    )


def _check_calibration(warm, n_workers: int) -> None:
    band = (
        SHAPE_ERROR_BAND
        if available_cores() >= n_workers
        else SHAPE_ERROR_BAND_OVERSUBSCRIBED
    )
    for backend, rep in warm.items():
        err = rep.cost_model_p90_error
        assert err is not None and err < band, (
            f"{backend}: cost-model p90 shape error {err:.0%} outside the "
            f"{band:.0%} band on a warmed serve"
        )


def _check_ddp(labeled, n_epochs: int) -> None:
    sizes = [g.n_atoms for g in labeled]

    def run(executor=None, **kw):
        trainer = Trainer(MACE(_MODEL_CFG, seed=0), labeled, lr=0.01)
        sampler = BalancedDistributedSampler(sizes, 96, num_replicas=2, seed=0)
        return DistributedTrainingRun(
            trainer, sampler, 2, executor=executor, **kw
        ).run(n_epochs)

    from repro.parallel import make_executor

    ref = run()
    with make_executor("process", 2) as ex:
        par = run(executor=ex)
    err = float(
        np.max(np.abs(np.array(par.epoch_losses) - np.array(ref.epoch_losses)))
    )
    assert err < 1e-12, f"parallel DDP losses drifted from serial: {err:.3e}"
    assert par.epoch_minutes == ref.epoch_minutes, "simulated timing changed"
    print(
        f"DDP serial vs 2 process ranks: max |dLoss| = {err:.3e}, "
        f"wall {par.total_wall_seconds:.2f} s (serial {ref.total_wall_seconds:.2f} s), "
        f"simulated timeline untouched"
    )


def _check_scaling(pool, n_requests: int) -> None:
    cores = available_cores()
    if cores < 4:
        print(f"scaling gate SKIPPED: {cores} core(s) visible, need >= 4")
        return
    # CPU-bound trace: everything arrives at once so makespan is pure
    # compute, and the batch budget keeps per-task work non-trivial.
    burst = generate_trace(pool, n_requests, rate=1e6, seed=9)
    makespans = {}
    for n_workers in (1, 4):
        with InferenceEngine(
            MACE(_MODEL_CFG, seed=0),
            pool,
            n_replicas=4,
            max_batch_tokens=128,
            mode="wall-clock",
            backend="process",
            n_workers=n_workers,
        ) as eng:
            eng.serve(burst)  # warm: capture plans, fork workers
            makespans[n_workers] = eng.serve(burst).measured_makespan
    speedup = makespans[1] / makespans[4]
    print(
        f"scaling: 1 worker {makespans[1] * 1e3:.0f} ms, "
        f"4 workers {makespans[4] * 1e3:.0f} ms -> {speedup:.2f}x"
    )
    assert speedup >= 2.5, f"4-worker speedup {speedup:.2f}x below the 2.5x gate"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="single-configuration CI gate (seconds, still asserts)",
    )
    args = parser.parse_args(argv)
    smoke = args.smoke

    print(f"visible cores: {available_cores()}")
    model = MACE(_MODEL_CFG, seed=0)
    _check_pickle(model)

    pool = build_request_pool(8, seed=3, max_atoms=40)
    trace = generate_trace(pool, 30 if smoke else 80, rate=400.0, seed=4)
    backends = ("thread", "process") if smoke else ("serial", "thread", "process")
    sim, warm = _wall_clock_reports(pool, trace, backends, n_workers=2)
    print(
        f"\ntrace: {trace.n_requests} requests, simulated makespan "
        f"{max(r.finish for r in sim.records) * 1e3:.1f} ms, {sim.n_batches} batches"
    )
    _check_numerics(sim, warm)
    _print_calibration(warm)
    _check_calibration(warm, n_workers=2)

    labeled = attach_labels(build_training_set(6, seed=31, max_atoms=40))
    _check_ddp(labeled, n_epochs=2 if smoke else 4)

    _check_scaling(pool, n_requests=30 if smoke else 60)

    print("\nbench_parallel: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
