"""Benchmark: real wall-clock comparison of baseline vs optimized kernels.

The paper's §4 optimizations are *actually implemented* in NumPy in this
repository (fusion -> fewer passes, CG sparsity -> fewer multiplies), so
the speedup is directly measurable — these benchmarks time both variants
of Algorithm 2 (channelwise tensor product) and Algorithm 3 (symmetric
tensor contraction) on MACE-shaped inputs.
"""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.kernels import (
    channelwise_tp_baseline,
    channelwise_tp_optimized,
    channelwise_tp_table,
    sym_contraction_spec,
    symmetric_contraction_baseline,
    symmetric_contraction_optimized,
    weight_layout,
)

TP_TABLE = channelwise_tp_table(3, 1, 2)  # paper shapes: Y to l=3, h = 0e+1o
SC_SPEC = sym_contraction_spec(2, 3, 1)  # body-order-4 product block

E, N, K, S = 2000, 300, 32, 8


@pytest.fixture(scope="module")
def tp_inputs():
    rng = np.random.default_rng(0)
    Y = Tensor(rng.standard_normal((E, 16)))
    h = Tensor(rng.standard_normal((E, K, 4)))
    R = Tensor(rng.standard_normal((E, K, TP_TABLE.num_paths)))
    return Y, h, R


@pytest.fixture(scope="module")
def sc_inputs():
    rng = np.random.default_rng(1)
    A = Tensor(rng.standard_normal((N, K, 9)))
    species = rng.integers(0, S, N)
    weights = [
        Tensor(rng.standard_normal((S, K, p)) * 0.2)
        for (_, _, p) in weight_layout(SC_SPEC)
    ]
    return A, species, weights


def test_channelwise_tp_baseline(benchmark, tp_inputs):
    Y, h, R = tp_inputs
    benchmark(lambda: channelwise_tp_baseline(Y, h, R, TP_TABLE))


def test_channelwise_tp_optimized(benchmark, tp_inputs):
    Y, h, R = tp_inputs
    benchmark(lambda: channelwise_tp_optimized(Y, h, R, TP_TABLE))


def test_symmetric_contraction_baseline(benchmark, sc_inputs):
    A, species, weights = sc_inputs
    benchmark(lambda: symmetric_contraction_baseline(A, species, weights, SC_SPEC))


def test_symmetric_contraction_optimized(benchmark, sc_inputs):
    A, species, weights = sc_inputs
    benchmark(lambda: symmetric_contraction_optimized(A, species, weights, SC_SPEC))


def test_kernel_speedup_summary(tp_inputs, sc_inputs):
    """Non-timed summary: verify the optimized variants actually win and by
    how much (printed for EXPERIMENTS.md)."""
    import time

    Y, h, R = tp_inputs
    A, species, weights = sc_inputs

    def clock(fn, reps=3):
        best = float("inf")
        for _ in range(reps):
            t0 = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - t0)
        return best

    t_tp_b = clock(lambda: channelwise_tp_baseline(Y, h, R, TP_TABLE))
    t_tp_o = clock(lambda: channelwise_tp_optimized(Y, h, R, TP_TABLE))
    t_sc_b = clock(lambda: symmetric_contraction_baseline(A, species, weights, SC_SPEC))
    t_sc_o = clock(lambda: symmetric_contraction_optimized(A, species, weights, SC_SPEC))
    print(
        f"\n[kernels] channelwise TP: baseline {t_tp_b*1e3:.1f} ms vs "
        f"optimized {t_tp_o*1e3:.1f} ms ({t_tp_b/t_tp_o:.2f}x)"
    )
    print(
        f"[kernels] symmetric contraction: baseline {t_sc_b*1e3:.1f} ms vs "
        f"optimized {t_sc_o*1e3:.1f} ms ({t_sc_b/t_sc_o:.2f}x)"
    )
    assert t_tp_o < t_tp_b
    assert t_sc_o < t_sc_b
