"""Benchmark: the vectorized hot kernels vs their pre-PR loop formulations.

PR 1 made batch construction cheap, moving the bottleneck to the model
forward itself — exactly the kernels the paper optimizes (Listing 1 /
Algorithms 2-3).  This benchmark pins down what the vectorization PR
bought, against the *pre-PR* "optimized" kernels kept verbatim below:

1. **Channelwise tensor product** (Algorithm 2) — the pre-PR variant ran
   one einsum per output component ``i3`` and three ``np.add.at``
   scatters in backward; the vectorized variant is three GEMM stages over
   precomputed sparse reduction matrices.  Target: >= 3x on forward +
   backward at batch scale (the acceptance gate).
2. **Symmetric contraction** (Algorithm 3 / Listing 1) — the pre-PR
   backward used dense one-hot GEMMs rebuilt around axis-1 gathers plus
   per-block ``np.add.at`` species scatters; the vectorized variant runs
   the whole chain structure-major with precomputed segment-reduction
   plans and reuses forward's gathers.  Target: no regression (the margin
   is recorded).
3. **Spherical harmonics** — the pre-PR per-``(l, m)`` Python loops vs
   the structure-leading layout with cached-table block writes.  Target:
   faster at the per-batch edge counts the model actually sees.

Every comparison first asserts baseline-vs-optimized outputs and
gradients agree within 1e-10 and runs the finite-difference gradchecks,
then prints the ``repro.kernels.counters`` execution profile of the
optimized kernels.

Run standalone::

    python benchmarks/bench_kernels.py          # full (3 timing repeats)
    python benchmarks/bench_kernels.py --smoke  # CI pass (2 repeats)

Both modes run the same ~2000-atom workloads and enforce the 3x
channelwise-TP gate; smoke mode trims timing repeats and widens the
no-regression gates with a noise band (0.85x) so a loaded CI machine
cannot fail the check on timing jitter alone.
"""

from __future__ import annotations

import argparse
import math
import pathlib
import sys
import time

import numpy as np

# Allow running from a checkout without installation, from any CWD.
sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.autograd import Tensor, check_gradients  # noqa: E402
from repro.autograd.engine import Function  # noqa: E402
from repro.equivariant.spherical_harmonics import (  # noqa: E402
    legendre_p,
    sh_dim,
    spherical_harmonics,
)
from repro.kernels import (  # noqa: E402
    channelwise_tp_optimized,
    channelwise_tp_table,
    counting,
    sym_contraction_spec,
    symmetric_contraction_baseline,
    symmetric_contraction_optimized,
    weight_layout,
)
from repro.kernels.channelwise_tp import channelwise_tp_baseline  # noqa: E402

TP_TABLE = channelwise_tp_table(3, 1, 2)  # paper shapes: Y to l=3, h = 0e+1o
SC_SPEC = sym_contraction_spec(2, 3, 1)  # body-order-4 product block


# -- pre-PR kernel formulations (kept verbatim as timing baselines) -------------------


class _LegacyChannelwiseTP(Function):
    """The pre-PR optimized channelwise TP: one einsum per output
    component ``i3`` in forward, three ``np.add.at`` scatters per
    component in backward."""

    def forward(self, Y, h, R, table):
        self.saved = (Y, h, R, table)
        E, K = h.shape[0], h.shape[1]
        out = np.zeros((E, K, sh_dim(table.l3max)), dtype=np.float64)
        for i3, lo, hi in table.out_groups:
            yw = table.values[lo:hi] * Y[:, table.i1[lo:hi]]
            hr = h[:, :, table.i2[lo:hi]] * R[:, :, table.path_idx[lo:hi]]
            out[:, :, i3] = np.einsum("en,ekn->ek", yw, hr, optimize=True)
        return out

    def backward(self, grad):
        Y, h, R, table = self.saved
        gY = np.zeros_like(Y)
        gh = np.zeros_like(h)
        gR = np.zeros_like(R)
        for i3, lo, hi in table.out_groups:
            i1 = table.i1[lo:hi]
            i2 = table.i2[lo:hi]
            pid = table.path_idx[lo:hi]
            c = table.values[lo:hi]
            g = grad[:, :, i3]
            hseg = h[:, :, i2]
            Rseg = R[:, :, pid]
            yseg = Y[:, i1]
            np.add.at(
                gY,
                (slice(None), i1),
                c[None, :] * np.einsum("ek,ekn->en", g, hseg * Rseg, optimize=True),
            )
            gy_h = (c[None, :] * yseg)[:, None, :] * g[:, :, None]
            np.add.at(gh, (slice(None), slice(None), i2), gy_h * Rseg)
            np.add.at(gR, (slice(None), slice(None), pid), gy_h * hseg)
        return gY, gh, gR, None


# Pre-PR one-hot matrices of the prefix-chain levels, built once outside
# the timed region (the pre-PR table precomputed them too).
_LEGACY_ONEHOTS = {}
for _b in SC_SPEC.blocks:
    for _lv in _b.levels:
        _n_d = _lv.new_col.size
        _oh_new = np.zeros((_n_d, sh_dim(SC_SPEC.lmax)))
        _oh_new[np.arange(_n_d), _lv.new_col] = 1.0
        _oh_prev = np.zeros((_n_d, _lv.n_prev))
        _oh_prev[np.arange(_n_d), _lv.prev_map] = 1.0
        _LEGACY_ONEHOTS[id(_lv)] = (_oh_new, _oh_prev)


class _LegacySymContraction(Function):
    """The pre-PR optimized symmetric contraction: atom-major layout,
    axis-1 gathers recomputed in backward, dense one-hot GEMM scatters
    and per-block ``np.add.at`` species reductions."""

    def forward(self, A, *weights, species, spec):
        N, K = A.shape[0], A.shape[1]
        A2 = A.reshape(N * K, A.shape[2])
        out = np.zeros((N, K, spec.out_dim), dtype=np.float64)
        saved_products, saved_G = [], []
        for w, block in zip(weights, spec.blocks):
            level_products = (
                [np.take(A2, block.tuple_cols, axis=1)] if not block.levels else []
            )
            prev = A2
            for level in block.levels:
                prev = np.take(prev, level.prev_map, axis=1) * np.take(
                    A2, level.new_col, axis=1
                )
                level_products.append(prev)
            prodT = level_products[-1]
            G = (prodT @ block.V).reshape(N * K, block.n_paths, 2 * block.L + 1)
            wsel2 = w[species].reshape(N * K, block.n_paths)
            base = block.L * block.L
            out[:, :, base : base + 2 * block.L + 1] += np.einsum(
                "np,npM->nM", wsel2, G, optimize=True
            ).reshape(N, K, 2 * block.L + 1)
            saved_products.append(level_products)
            saved_G.append(G)
        self.saved = (A, species, weights, spec, saved_products, saved_G)
        return out

    def backward(self, grad):
        A, species, weights, spec, saved_products, saved_G = self.saved
        N, K = A.shape[0], A.shape[1]
        A2 = A.reshape(N * K, A.shape[2])
        gA2 = np.zeros_like(A2)
        gws = [np.zeros_like(w) for w in weights]
        for w_i, (w, block) in enumerate(zip(weights, spec.blocks)):
            level_products = saved_products[w_i]
            G = saved_G[w_i]
            wsel2 = w[species].reshape(N * K, block.n_paths)
            base = block.L * block.L
            g_block = grad[:, :, base : base + 2 * block.L + 1].reshape(
                N * K, 2 * block.L + 1
            )
            gw2 = np.einsum("nM,npM->np", g_block, G, optimize=True)
            np.add.at(gws[w_i], species, gw2.reshape(N, K, block.n_paths))
            gG = wsel2[:, :, None] * g_block[:, None, :]
            g_cur = gG.reshape(N * K, -1) @ block.V.T
            for d in range(len(block.levels) - 1, -1, -1):
                level = block.levels[d]
                prev = A2 if d == 0 else level_products[d - 1]
                prev_taken = np.take(prev, level.prev_map, axis=1)
                new_taken = np.take(A2, level.new_col, axis=1)
                oh_new, oh_prev = _LEGACY_ONEHOTS[id(level)]
                gA2 += (g_cur * prev_taken) @ oh_new
                g_cur = (g_cur * new_taken) @ oh_prev
            if block.levels:
                gA2 += g_cur
            else:
                sc = np.zeros((block.tuple_cols.size, A2.shape[1]))
                sc[np.arange(block.tuple_cols.size), block.tuple_cols] = 1.0
                gA2 += g_cur @ sc
        return (gA2.reshape(A.shape), *gws)


def _sh_norm(l, m):
    m = abs(m)
    return math.sqrt(
        (2 * l + 1) / (4.0 * math.pi) * math.factorial(l - m) / math.factorial(l + m)
    )


def legacy_spherical_harmonics(lmax, vectors, normalization="integral"):
    """The pre-PR spherical harmonics: per-``(l, m)`` Python-loop column
    writes (shares :func:`legendre_p`, whose vectorization is internal)."""
    v = np.asarray(vectors, dtype=np.float64)
    norm = np.linalg.norm(v, axis=-1, keepdims=True)
    safe = np.where(norm > 0.0, norm, 1.0)
    v = v / safe
    v = np.where(norm > 0.0, v, np.array([0.0, 0.0, 1.0]))
    y, z = v[..., 1], v[..., 2]
    ct = np.clip(z, -1.0, 1.0)
    phi = np.arctan2(y, v[..., 0])
    plm = legendre_p(lmax, ct)
    out = np.empty(v.shape[:-1] + (sh_dim(lmax),), dtype=np.float64)
    sqrt2 = math.sqrt(2.0)
    cos_m = [np.ones_like(phi)]
    sin_m = [np.zeros_like(phi)]
    cphi, sphi = np.cos(phi), np.sin(phi)
    for m in range(1, lmax + 1):
        cos_m.append(cos_m[-1] * cphi - sin_m[-1] * sphi)
        sin_m.append(sin_m[-1] * cphi + cos_m[-2] * sphi)
    for l in range(lmax + 1):
        base = l * l
        scale = 1.0 if normalization == "integral" else math.sqrt(4.0 * math.pi)
        out[..., base + l] = scale * _sh_norm(l, 0) * plm[..., l, 0]
        for m in range(1, l + 1):
            n = scale * sqrt2 * _sh_norm(l, m)
            out[..., base + l + m] = n * plm[..., l, m] * cos_m[m]
            out[..., base + l - m] = n * plm[..., l, m] * sin_m[m]
    return out


# -- correctness gates ----------------------------------------------------------------


def _tp_inputs(rng, E, K):
    Y = Tensor(rng.standard_normal((E, sh_dim(TP_TABLE.l1max))), requires_grad=True)
    h = Tensor(rng.standard_normal((E, K, sh_dim(TP_TABLE.l2max))), requires_grad=True)
    R = Tensor(rng.standard_normal((E, K, TP_TABLE.num_paths)), requires_grad=True)
    return Y, h, R


def _sc_inputs(rng, N, K, S):
    A = Tensor(rng.standard_normal((N, K, sh_dim(SC_SPEC.lmax))), requires_grad=True)
    species = rng.integers(0, S, N)
    weights = [
        Tensor(rng.standard_normal((S, K, p)) * 0.2, requires_grad=True)
        for (_, _, p) in weight_layout(SC_SPEC)
    ]
    return A, species, weights


def check_equivalence_and_grads() -> None:
    """Baseline-vs-optimized outputs and gradients within 1e-10, plus
    finite-difference gradchecks on the vectorized kernels."""
    rng = np.random.default_rng(7)
    tol = 1e-10

    Y, h, R = _tp_inputs(rng, E=64, K=8)
    g = rng.standard_normal((64, 8, sh_dim(TP_TABLE.l3max)))
    pairs = {}
    for name, fn in (
        ("baseline", channelwise_tp_baseline),
        ("optimized", channelwise_tp_optimized),
        ("legacy", _LegacyChannelwiseTP.apply),
    ):
        for t in (Y, h, R):
            t.zero_grad()
        out = fn(Y, h, R, TP_TABLE)
        out.backward(g)
        pairs[name] = (out.numpy(), [t.grad.copy() for t in (Y, h, R)])
    for other in ("optimized", "legacy"):
        assert np.abs(pairs["baseline"][0] - pairs[other][0]).max() < tol
        for ga, gb in zip(pairs["baseline"][1], pairs[other][1]):
            assert np.abs(ga - gb).max() < tol

    A, species, weights = _sc_inputs(rng, N=24, K=4, S=3)
    gsc = rng.standard_normal((24, 4, SC_SPEC.out_dim))
    pairs = {}
    for name, fn in (
        ("baseline", lambda: symmetric_contraction_baseline(A, species, weights, SC_SPEC)),
        ("optimized", lambda: symmetric_contraction_optimized(A, species, weights, SC_SPEC)),
        ("legacy", lambda: _LegacySymContraction.apply(
            A, *weights, species=np.asarray(species, dtype=np.int64), spec=SC_SPEC)),
    ):
        for t in (A, *weights):
            t.zero_grad()
        out = fn()
        out.backward(gsc)
        pairs[name] = (out.numpy(), [t.grad.copy() for t in (A, *weights)])
    for other in ("optimized", "legacy"):
        assert np.abs(pairs["baseline"][0] - pairs[other][0]).max() < tol
        for ga, gb in zip(pairs["baseline"][1], pairs[other][1]):
            assert np.abs(ga - gb).max() < tol

    # Spherical harmonics: vectorized column writes match the loop version.
    v = rng.standard_normal((512, 3))
    for normalization in ("integral", "component"):
        a = legacy_spherical_harmonics(3, v, normalization)
        b = spherical_harmonics(3, v, normalization=normalization)
        assert np.abs(a - b).max() < tol

    # Gradchecks (small shapes; central finite differences).
    Y, h, R = _tp_inputs(rng, E=3, K=2)
    check_gradients(
        lambda Y, h, R: (channelwise_tp_optimized(Y, h, R, TP_TABLE) ** 2.0).sum(),
        [Y, h, R],
    )
    A, species, weights = _sc_inputs(rng, N=3, K=2, S=2)
    check_gradients(
        lambda A, *ws: (
            symmetric_contraction_optimized(A, species, ws, SC_SPEC) ** 2.0
        ).sum(),
        [A, *weights],
        atol=2e-5,
    )
    print("[kernels] equivalence (<= 1e-10) and gradchecks: OK")


# -- timing ---------------------------------------------------------------------------


def _best_of(fn, repeats):
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def bench_tp(E: int, K: int, repeats: int) -> float:
    """Forward+backward, vectorized vs pre-PR per-component loops."""
    rng = np.random.default_rng(0)
    Y, h, R = _tp_inputs(rng, E, K)
    g = np.ones((E, K, sh_dim(TP_TABLE.l3max)))
    t_new = _best_of(
        lambda: channelwise_tp_optimized(Y, h, R, TP_TABLE).backward(g), repeats
    )
    t_old = _best_of(
        lambda: _LegacyChannelwiseTP.apply(Y, h, R, TP_TABLE).backward(g), repeats
    )
    speedup = t_old / t_new
    print(
        f"[kernels] channelwise TP fwd+bwd ({E} edges, K={K}): "
        f"per-component loops {t_old * 1e3:7.1f} ms  vectorized "
        f"{t_new * 1e3:7.1f} ms  -> {speedup:.2f}x"
    )
    return speedup


def bench_sc(N: int, K: int, S: int, repeats: int) -> float:
    """Forward+backward, structure-major plans vs pre-PR formulation."""
    rng = np.random.default_rng(1)
    A, species, weights = _sc_inputs(rng, N, K, S)
    g = np.ones((N, K, SC_SPEC.out_dim))
    sp = np.asarray(species, dtype=np.int64)
    t_new = _best_of(
        lambda: symmetric_contraction_optimized(A, species, weights, SC_SPEC).backward(g),
        repeats,
    )
    t_old = _best_of(
        lambda: _LegacySymContraction.apply(
            A, *weights, species=sp, spec=SC_SPEC
        ).backward(g),
        repeats,
    )
    speedup = t_old / t_new
    print(
        f"[kernels] symmetric contraction fwd+bwd ({N} atoms, K={K}): "
        f"pre-PR {t_old * 1e3:7.1f} ms  structure-major {t_new * 1e3:7.1f} ms  "
        f"-> {speedup:.2f}x"
    )
    return speedup


def bench_sh(E: int, lmax: int, repeats: int) -> float:
    """Spherical harmonics forward, vectorized vs per-(l, m) loops."""
    rng = np.random.default_rng(2)
    v = rng.standard_normal((E, 3))
    t_old = _best_of(lambda: legacy_spherical_harmonics(lmax, v, "component"), repeats)
    t_new = _best_of(
        lambda: spherical_harmonics(lmax, v, normalization="component"), repeats
    )
    speedup = t_old / t_new
    print(
        f"[kernels] spherical harmonics ({E} edges, lmax={lmax}): "
        f"per-(l,m) loops {t_old * 1e3:7.1f} ms  vectorized "
        f"{t_new * 1e3:7.1f} ms  -> {speedup:.2f}x"
    )
    return speedup


def print_counter_profile(E: int, N: int, K: int, S: int) -> None:
    """The repro.kernels.counters profile of one optimized model pass."""
    rng = np.random.default_rng(3)
    Y, h, R = _tp_inputs(rng, E, K)
    A, species, weights = _sc_inputs(rng, N, K, S)
    with counting() as kc:
        channelwise_tp_optimized(Y, h, R, TP_TABLE)
        symmetric_contraction_optimized(A, species, weights, SC_SPEC)
    print(
        f"[kernels] counters profile ({E} edges, {N} atoms): "
        f"{kc.launches} launches, {kc.flops / 1e6:.1f} MFLOP, "
        f"{kc.bytes / 1e6:.1f} MB"
    )
    for name, slot in sorted(kc.by_name.items()):
        print(
            f"[kernels]   {name:12s} launches={int(slot['launches']):3d}  "
            f"flops={slot['flops'] / 1e6:8.1f}M  bytes={slot['bytes'] / 1e6:8.1f}M"
        )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="fewer timing repeats; same workloads, noise band on the "
        "no-regression gates",
    )
    parser.add_argument("--atoms", type=int, default=2000, help="batch size in atoms")
    args = parser.parse_args(argv)

    n_atoms = args.atoms
    repeats = 2 if args.smoke else 3
    # The channelwise TP runs per *edge*; a ~2000-atom batch at the
    # paper's cutoff carries tens of thousands of edges, but the kernel
    # cost is linear in E so a 3x-per-edge win is a 3x win at any E.  E is
    # kept at 3 x atoms so the legacy loops finish in CI-friendly time.
    E_tp = 3 * n_atoms
    K, S = 32, 8

    check_equivalence_and_grads()
    tp_speedup = bench_tp(E_tp, K, repeats)
    sc_speedup = bench_sc(n_atoms, K, S, repeats)
    # A periodic ~2000-atom batch at the paper's cutoff carries tens of
    # edges per atom; SH is cheap enough to benchmark at that real count.
    sh_speedup = bench_sh(10 * n_atoms, 3, max(repeats, 2))
    print_counter_profile(E_tp, n_atoms, K, S)

    # Smoke mode runs fewer repeats on possibly loaded CI machines, so its
    # no-regression gates get a noise band; the full run enforces them
    # exactly.  The 3x channelwise-TP gate has a ~4x measured cushion.
    no_regress = 0.85 if args.smoke else 1.0
    ok = True
    if tp_speedup < 3.0:
        print(f"FAIL: channelwise TP speedup {tp_speedup:.2f}x below the 3x gate")
        ok = False
    if sc_speedup < no_regress:
        print(f"FAIL: symmetric contraction regressed ({sc_speedup:.2f}x)")
        ok = False
    if sh_speedup < no_regress:
        print(f"FAIL: spherical harmonics regressed ({sh_speedup:.2f}x)")
        ok = False
    print("kernel benchmark:", "OK" if ok else "FAILED")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
